#include "core/direct_fix.h"

#include <unordered_map>

namespace certfix {

Status DirectFixChecker::ValidateShape() const {
  for (const EditingRule& rule : *rules_) {
    if (!rule.IsDirect()) {
      return Status::Unsupported("rule " + rule.name() +
                                 " is not direct (Xp not a subset of X)");
    }
  }
  return Status::OK();
}

std::vector<size_t> DirectFixChecker::SigmaZ(const AttrSet& z_set) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < rules_->size(); ++i) {
    const EditingRule& rule = rules_->at(i);
    if (rule.lhs_set().SubsetOf(z_set) && !z_set.Contains(rule.rhs())) {
      out.push_back(i);
    }
  }
  return out;
}

Result<std::vector<size_t>> DirectFixChecker::EvalQ(
    const EditingRule& rule, const PatternTuple& tc) const {
  // Translate the rule pattern and the region pattern to the master side:
  // master attribute lambda(A) must match tp[A] for A in Xp, and tc[A] for
  // A in X (proof of Thm 5: Rm.Xpm ≈ tp[Xp] and Rm.Xm ≈ tc[X]).
  std::vector<std::pair<AttrId, PatternValue>> master_conditions;
  for (size_t i = 0; i < rule.lhs().size(); ++i) {
    AttrId r_attr = rule.lhs()[i];
    AttrId m_attr = rule.lhsm()[i];
    PatternValue from_tc = tc.Get(r_attr);
    if (!from_tc.is_wildcard()) master_conditions.emplace_back(m_attr, from_tc);
    PatternValue from_tp = rule.pattern().Get(r_attr);
    if (!from_tp.is_wildcard()) master_conditions.emplace_back(m_attr, from_tp);
  }
  std::vector<size_t> rows;
  for (size_t m = 0; m < dm_->size(); ++m) {
    bool match = true;
    for (const auto& [attr, pv] : master_conditions) {
      if (!pv.Matches(dm_->Cell(m, attr))) {
        match = false;
        break;
      }
    }
    if (match) rows.push_back(m);
  }
  return rows;
}

Result<bool> DirectFixChecker::IsConsistent(
    const std::vector<AttrId>& z, const PatternTuple& tc,
    std::vector<DirectFixWitness>* witnesses) const {
  CERTFIX_RETURN_NOT_OK(ValidateShape());
  AttrSet z_set = AttrSet::FromVector(z);
  std::vector<size_t> sigma_z = SigmaZ(z_set);

  // Q_phi materialized per rule.
  std::vector<std::vector<size_t>> q(sigma_z.size());
  for (size_t i = 0; i < sigma_z.size(); ++i) {
    CERTFIX_ASSIGN_OR_RETURN(q[i], EvalQ(rules_->at(sigma_z[i]), tc));
  }

  bool consistent = true;
  for (size_t i = 0; i < sigma_z.size(); ++i) {
    const EditingRule& r1 = rules_->at(sigma_z[i]);
    for (size_t j = i; j < sigma_z.size(); ++j) {
      const EditingRule& r2 = rules_->at(sigma_z[j]);
      if (i == j && q[i].size() < 2) continue;
      if (r1.rhs() != r2.rhs()) continue;
      // Shared input attributes X = lhs(r1) ∩ lhs(r2); the join condition
      // R1.X = R2.X of Q_{phi1,phi2} translated to each rule's master side.
      std::vector<AttrId> shared;
      for (AttrId a : r1.lhs()) {
        if (r2.lhs_set().Contains(a)) shared.push_back(a);
      }
      std::vector<AttrId> m1;
      std::vector<AttrId> m2;
      for (AttrId a : shared) {
        m1.push_back(*r1.MasterAttrFor(a));
        m2.push_back(*r2.MasterAttrFor(a));
      }
      // Hash-join q[i] and q[j] on the shared key; flag differing B
      // values. Both sides index one relation (Dm), so keys and the B
      // comparison are pool ids — no string rendering.
      auto row_key = [this](size_t row, const std::vector<AttrId>& attrs) {
        IdKey key(attrs.size());
        for (size_t k = 0; k < attrs.size(); ++k) {
          key[k] = dm_->CellId(row, attrs[k]);
        }
        return key;
      };
      // contract-lint: allow(idkey-map) per-pair hash join, built once
      std::unordered_map<IdKey, std::vector<size_t>, IdKeyHash> bucket;
      for (size_t row : q[i]) {
        bucket[row_key(row, m1)].push_back(row);
      }
      for (size_t row2 : q[j]) {
        auto it = bucket.find(row_key(row2, m2));
        if (it == bucket.end()) continue;
        ValueId v2 = dm_->CellId(row2, r2.rhsm());
        for (size_t row1 : it->second) {
          if (i == j && row1 == row2) continue;
          ValueId v1 = dm_->CellId(row1, r1.rhsm());
          if (v1 != v2) {
            consistent = false;
            if (witnesses != nullptr) {
              witnesses->push_back(
                  DirectFixWitness{sigma_z[i], sigma_z[j], r1.rhs(),
                                   dm_->Cell(row1, r1.rhsm()),
                                   dm_->Cell(row2, r2.rhsm())});
            } else {
              return false;
            }
          }
        }
      }
    }
  }
  return consistent;
}

Result<bool> DirectFixChecker::IsCertainRegion(const std::vector<AttrId>& z,
                                               const PatternTuple& tc) const {
  CERTFIX_ASSIGN_OR_RETURN(bool consistent, IsConsistent(z, tc, nullptr));
  if (!consistent) return false;
  AttrSet z_set = AttrSet::FromVector(z);
  const SchemaPtr& schema = rules_->r_schema();
  for (AttrId b = 0; b < schema->num_attrs(); ++b) {
    if (z_set.Contains(b)) continue;
    bool covered = false;
    for (const EditingRule& rule : *rules_) {
      if (rule.rhs() != b) continue;
      if (!rule.lhs_set().SubsetOf(z_set)) continue;
      // tc[X] must be constants and compatible with the rule pattern.
      bool constants = true;
      for (AttrId a : rule.lhs()) {
        PatternValue pv = tc.Get(a);
        if (!pv.is_const()) {
          constants = false;
          break;
        }
        PatternValue rp = rule.pattern().Get(a);
        if (!rp.Matches(pv.value())) {
          constants = false;
          break;
        }
      }
      if (!constants) continue;
      CERTFIX_ASSIGN_OR_RETURN(std::vector<size_t> rows, EvalQ(rule, tc));
      if (!rows.empty()) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

Result<bool> DirectFixChecker::IsConsistent(const Region& region) const {
  for (const PatternTuple& row : region.tableau().rows()) {
    CERTFIX_ASSIGN_OR_RETURN(bool ok, IsConsistent(region.z(), row, nullptr));
    if (!ok) return false;
  }
  return true;
}

Result<bool> DirectFixChecker::IsCertainRegion(const Region& region) const {
  if (region.tableau().empty()) return false;
  for (const PatternTuple& row : region.tableau().rows()) {
    CERTFIX_ASSIGN_OR_RETURN(bool ok, IsCertainRegion(region.z(), row));
    if (!ok) return false;
  }
  return true;
}

}  // namespace certfix
