/// \file master_index.h
/// \brief Per-rule hash indexes into the master relation.

#ifndef CERTFIX_CORE_MASTER_INDEX_H_
#define CERTFIX_CORE_MASTER_INDEX_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "relational/flat_key_index.h"
#include "relational/key_index.h"
#include "rules/rule_set.h"

namespace certfix {

/// \brief Which hash-table implementation backs the master indexes.
///
/// kFlat is the default everywhere; kMap keeps the node-based
/// std::unordered_map path alive as the A/B oracle the differential
/// suites and `--index=map` runs compare against.
enum class IndexKind {
  kFlat,  ///< cache-line-bucketed open addressing (flat_key_index.h)
  kMap,   ///< legacy node-based std::unordered_map
};

/// \brief Indexes Dm so that, for each rule phi and input tuple t, the
/// master tuples tm with tm[Xm] = t[X] are found in constant time
/// (the hash tables of Sect. 5.1's complexity analysis).
///
/// Two structures per distinct key:
///  * a row index (key -> master row positions), shared by rules with the
///    same Xm list;
///  * a value summary (key -> distinct tm[Bm] values with one
///    representative row), shared by rules with the same (Xm, Bm). The
///    saturation engine consumes summaries, so a key matching thousands of
///    master rows costs O(#distinct values), not O(#rows).
///
/// The sharing constructor reuses the structures of an existing index for
/// a refined rule set (e.g. Sigma_t[Z], whose rules keep their Xm/Bm),
/// avoiding any O(|Dm|) work per Suggest call.
///
/// Thread safety: all index structures are built in the constructor and
/// never mutated afterwards; Candidates / RhsValues are pure lookups, so
/// a fully constructed MasterIndex is safe for concurrent read-only use
/// (the parallel BatchRepair shards share one instance). A PoolBridge
/// passed to the probe calls is per-thread state owned by the caller.
class MasterIndex {
 public:
  /// One distinct rhs value tm[Bm] with its master-pool id and a
  /// representative master row carrying it. The id lets the saturation
  /// engine compare proposals as integers.
  struct RhsValue {
    Value value;
    ValueId id = kNullValueId;
    size_t row = 0;
  };
  using RhsSummary = std::vector<RhsValue>;

  MasterIndex(const RuleSet& rules, const Relation& dm,
              IndexKind kind = IndexKind::kFlat);
  /// Shares row indexes and value summaries with `share_from` (must be
  /// built over the same Dm; the kind is inherited); only genuinely new
  /// (Xm, Bm) combinations are built fresh.
  MasterIndex(const RuleSet& rules, const Relation& dm,
              const MasterIndex& share_from);

  /// Master-row positions applicable to rule `rule_idx` given t's current
  /// values on lhs(phi) (pattern matching on t is the caller's concern).
  /// `bridge`, when given, must translate t's pool into the master pool.
  /// The span views index-owned storage and stays valid while the index
  /// lives.
  RowSpan Candidates(size_t rule_idx, const Tuple& t,
                     PoolBridge* bridge = nullptr) const;

  /// Distinct values tm[Bm] over the candidate rows, each with one
  /// representative row. Size > 1 means conflicting master proposals.
  const RhsSummary& RhsValues(size_t rule_idx, const Tuple& t,
                              PoolBridge* bridge = nullptr) const;

  /// Issues software prefetches for the value-summary buckets the given
  /// rules would probe on `t` — the staging half of the batched-probe
  /// pipeline (no-op on the map path). Callers pass the rules whose
  /// premises the trusted set already validates (round 1 of every
  /// saturation; see Saturator::FirstRoundProbeRules).
  void PrefetchRhsProbes(const Tuple& t, const std::vector<size_t>& rule_idxs,
                         PoolBridge* bridge = nullptr) const;

  const Relation& master() const { return *dm_; }
  /// The master relation's value pool (bridge targets point here).
  const PoolPtr& pool() const { return dm_->pool(); }
  size_t num_rules() const { return rule_to_index_.size(); }
  IndexKind kind() const { return kind_; }

 private:
  struct ValueIndex {
    // key (master-pool ids) -> distinct (value, id, representative row).
    // Exactly one of the two representations is populated, per kind.
    // contract-lint: allow(idkey-map) legacy kMap path, the flat A/B oracle
    std::unordered_map<IdKey, RhsSummary, IdKeyHash> map;
    FlatIdTable table;                  // flat path: key -> summaries slot
    std::vector<RhsSummary> summaries;  // flat path payload target
    RhsSummary all_rows_summary;        // for empty-X rules
  };

  void Build(const RuleSet& rules, const MasterIndex* share_from);
  static std::shared_ptr<ValueIndex> BuildValueIndex(
      const Relation& dm, const std::vector<AttrId>& xm, AttrId bm,
      IndexKind kind);

  const Relation* dm_;
  IndexKind kind_ = IndexKind::kFlat;
  std::vector<std::shared_ptr<KeyIndex>> indexes_;           // kMap
  std::vector<std::shared_ptr<FlatKeyIndex>> flat_indexes_;  // kFlat
  std::vector<std::shared_ptr<ValueIndex>> value_indexes_;
  std::map<std::vector<AttrId>, int> key_ids_;
  std::map<std::pair<std::vector<AttrId>, AttrId>, int> value_ids_;
  std::vector<int> rule_to_index_;        // -1 for empty-X rules
  std::vector<int> rule_to_value_;        // always >= 0
  std::vector<std::vector<AttrId>> probe_;  // per-rule X list
  std::vector<size_t> all_rows_;            // used by empty-X rules
  static const RhsSummary kEmptySummary;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_MASTER_INDEX_H_
