/// \file suggest.h
/// \brief Procedure Suggest (Fig. 6) and the suggestion re-check used by
/// Suggest+ (Sect. 5.2).

#ifndef CERTFIX_CORE_SUGGEST_H_
#define CERTFIX_CORE_SUGGEST_H_

#include "core/applicable_rules.h"
#include "core/cregion.h"
#include "core/saturation.h"

namespace certfix {

/// \brief Computes suggestions: a set S of attributes such that, once the
/// user additionally asserts t[S] correct, a certain region covering
/// Z ∪ S is matched and a certain fix is warranted (Sect. 5.2).
class Suggester {
 public:
  /// `base_index` (optional) lets Suggest share the engine's master
  /// indexes when validating candidate regions over refined rule sets,
  /// avoiding O(|Dm|) index builds per call.
  Suggester(const RuleSet& rules, const Relation& dm,
            const MasterIndex* base_index = nullptr)
      : rules_(&rules),
        dm_(&dm),
        base_index_(base_index),
        partial_cache_(dm) {}

  /// Suggest(t, Z): derive Sigma_t[Z]; compute a small S with
  /// closure_{Sigma_t[Z]}(Z ∪ S) = R (greedy, then locally minimized);
  /// verify a non-empty certain tableau anchored at t[Z] exists. Falls back
  /// to R \ Z when no smaller suggestion can be verified.
  AttrSet Suggest(const Tuple& t, AttrSet z);

  /// The re-check Suggest+ performs on cached nodes: is S still a
  /// suggestion for t w.r.t. t[Z]?
  bool IsSuggestion(const Tuple& t, AttrSet z, AttrSet s);

  /// Exposed for tests: Sigma_t[Z].
  ApplicableRules Applicable(const Tuple& t, AttrSet z) {
    return DeriveApplicableRules(*rules_, *dm_, &partial_cache_, t, z);
  }

 private:
  // closure of z under `rules` (schema level).
  static AttrSet ClosureOf(const RuleSet& rules, AttrSet z);

  // Verifies that some master tuple yields a valid certain-region row for
  // (z_full, anchored at t on z_validated). Bounded probing.
  bool VerifyRegionRow(const RuleSet& applicable, const Tuple& t,
                       AttrSet z_validated, const std::vector<AttrId>& z_full);

  const RuleSet* rules_;
  const Relation* dm_;
  const MasterIndex* base_index_;
  PartialMasterIndexCache partial_cache_;
  std::optional<std::set<Value>> dom_cache_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_SUGGEST_H_
