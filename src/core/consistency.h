/// \file consistency.h
/// \brief The consistency problem (Sect. 4.1): does every tuple marked by
/// (Z, Tc) have a unique fix by (Sigma, Dm)?

#ifndef CERTFIX_CORE_CONSISTENCY_H_
#define CERTFIX_CORE_CONSISTENCY_H_

#include "core/exhaustive.h"
#include "core/region.h"
#include "core/saturation.h"
#include "util/result.h"

namespace certfix {

/// \brief Outcome of a consistency / coverage decision with a witness.
struct ConsistencyReport {
  bool consistent = true;
  bool covers_all = true;   ///< meaningful for certain-region checks
  std::vector<FixConflict> conflicts;
  AttrSet uncovered;        ///< attributes missed when !covers_all
};

/// \brief Checker fronting the PTIME concrete algorithm of Theorem 4 and
/// the enumeration-based general algorithm (coNP; Theorem 1) when rows
/// carry wildcards or negations on rule-mentioned attributes.
class ConsistencyChecker {
 public:
  explicit ConsistencyChecker(const Saturator& sat) : sat_(&sat) {}

  /// True iff (Sigma, Dm) is consistent relative to (Z, Tc). Rows whose
  /// cells are concrete on all rule-mentioned attributes use the PTIME
  /// path; otherwise the active-domain enumeration is used (bounded by
  /// `max_instances` and failing with OutOfRange beyond it).
  Result<bool> IsConsistent(const Region& region,
                            size_t max_instances = 100000) const;

  /// Full report (conflicts) for a single concrete-enough row.
  Result<ConsistencyReport> CheckRow(const Region& region,
                                     const PatternTuple& row,
                                     size_t max_instances = 100000) const;

  /// Runtime check used by the interactive framework: does the concrete
  /// tuple `t`, with `z0` validated, have a unique fix? (The "t[Z' + S]
  /// leads to a unique fix" test of Fig. 3, line 6.)
  SaturationResult CheckTuple(const Tuple& t, AttrSet z0) const {
    return sat_->CheckUniqueFix(t, z0);
  }

  const Saturator& saturator() const { return *sat_; }

 private:
  const Saturator* sat_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_CONSISTENCY_H_
