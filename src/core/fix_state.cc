#include "core/fix_state.h"

namespace certfix {

namespace {

// FNV-1a over the rule index and the projected cell hashes. The input and
// master sides feed equal value lists for matching probes, so both hash
// functions below must combine identically.
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline uint64_t Mix(uint64_t h, uint64_t x) {
  h ^= x;
  h *= kFnvPrime;
  return h;
}

}  // namespace

uint64_t ProbeKeyHash(size_t rule_idx, const Tuple& t,
                      const std::vector<AttrId>& attrs) {
  uint64_t h = Mix(kFnvOffset, static_cast<uint64_t>(rule_idx));
  for (AttrId a : attrs) h = Mix(h, t.at(a).Hash());
  return h;
}

uint64_t MasterProbeKeyHash(size_t rule_idx, const Relation& dm, size_t row,
                            const std::vector<AttrId>& attrs) {
  uint64_t h = Mix(kFnvOffset, static_cast<uint64_t>(rule_idx));
  for (AttrId a : attrs) h = Mix(h, dm.Cell(row, a).Hash());
  return h;
}

bool FixState::IsEnabled(const RuleSet& rules, const Relation& dm,
                         const FixMove& move) const {
  const EditingRule& rule = rules.at(move.rule_idx);
  if (!rule.premise_set().SubsetOf(z_)) return false;
  if (z_.Contains(rule.rhs())) return false;
  const Tuple& tm = dm.at(move.master_idx);
  return rule.AppliesTo(tuple_, tm);
}

std::vector<FixMove> FixState::EnabledMoves(const RuleSet& rules,
                                            const MasterIndex& index) const {
  std::vector<FixMove> moves;
  PoolBridge bridge(tuple_.pool().get(), index.pool().get());
  for (size_t i = 0; i < rules.size(); ++i) {
    const EditingRule& rule = rules.at(i);
    if (!rule.premise_set().SubsetOf(z_)) continue;
    if (z_.Contains(rule.rhs())) continue;
    if (!rule.pattern().Matches(tuple_)) continue;
    for (size_t m : index.Candidates(i, tuple_, &bridge)) {
      moves.push_back(FixMove{i, m, rule.rhs(),
                              index.master().Cell(m, rule.rhsm())});
    }
  }
  return moves;
}

void FixState::Apply(const RuleSet& rules, const FixMove& move) {
  const EditingRule& rule = rules.at(move.rule_idx);
  tuple_.Set(rule.rhs(), move.value);
  z_.Add(rule.rhs());
  applied_.push_back(move);
}

}  // namespace certfix
