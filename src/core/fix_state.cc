#include "core/fix_state.h"

namespace certfix {

bool FixState::IsEnabled(const RuleSet& rules, const Relation& dm,
                         const FixMove& move) const {
  const EditingRule& rule = rules.at(move.rule_idx);
  if (!rule.premise_set().SubsetOf(z_)) return false;
  if (z_.Contains(rule.rhs())) return false;
  const Tuple& tm = dm.at(move.master_idx);
  return rule.AppliesTo(tuple_, tm);
}

std::vector<FixMove> FixState::EnabledMoves(const RuleSet& rules,
                                            const MasterIndex& index) const {
  std::vector<FixMove> moves;
  PoolBridge bridge(tuple_.pool().get(), index.pool().get());
  for (size_t i = 0; i < rules.size(); ++i) {
    const EditingRule& rule = rules.at(i);
    if (!rule.premise_set().SubsetOf(z_)) continue;
    if (z_.Contains(rule.rhs())) continue;
    if (!rule.pattern().Matches(tuple_)) continue;
    for (size_t m : index.Candidates(i, tuple_, &bridge)) {
      moves.push_back(FixMove{i, m, rule.rhs(),
                              index.master().Cell(m, rule.rhsm())});
    }
  }
  return moves;
}

void FixState::Apply(const RuleSet& rules, const FixMove& move) {
  const EditingRule& rule = rules.at(move.rule_idx);
  tuple_.Set(rule.rhs(), move.value);
  z_.Add(rule.rhs());
  applied_.push_back(move);
}

}  // namespace certfix
