/// \file batch_repair.h
/// \brief Certain fixes in data *repairing* rather than monitoring — the
/// first future-work topic of Sect. 7: "efficiently find certain fixes
/// for data in a database".
///
/// Given a relation whose tuples all have a trusted attribute set Z
/// (e.g. verified keys), BatchRepair applies every certain fix the rules
/// and master data entail, tuple by tuple, without user interaction.
/// Tuples whose (Sigma, Dm) analysis conflicts are left untouched and
/// reported; tuples not fully covered are partially repaired (every
/// applied fix is still certain relative to Z).

#ifndef CERTFIX_CORE_BATCH_REPAIR_H_
#define CERTFIX_CORE_BATCH_REPAIR_H_

#include "core/saturation.h"

namespace certfix {

/// \brief Outcome of repairing one relation.
struct BatchRepairResult {
  Relation repaired;
  size_t tuples_fully_covered = 0;  ///< certain fix reached (covered = R)
  size_t tuples_partial = 0;        ///< some but not all attrs covered
  size_t tuples_untouched = 0;      ///< nothing beyond Z derivable
  size_t tuples_conflicting = 0;    ///< unique-fix check failed
  size_t cells_changed = 0;
  /// Row positions with conflicts (left unmodified).
  std::vector<size_t> conflict_rows;
};

/// \brief Batch repair engine.
class BatchRepair {
 public:
  explicit BatchRepair(const Saturator& sat) : sat_(&sat) {}

  /// Repairs a copy of `data`, trusting t[Z] of every tuple. Tuples that
  /// fail the unique-fix check are reported and left unchanged.
  BatchRepairResult Repair(const Relation& data, AttrSet trusted) const;

 private:
  const Saturator* sat_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_BATCH_REPAIR_H_
