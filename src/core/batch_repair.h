/// \file batch_repair.h
/// \brief Certain fixes in data *repairing* rather than monitoring — the
/// first future-work topic of Sect. 7: "efficiently find certain fixes
/// for data in a database".
///
/// Given a relation whose tuples all have a trusted attribute set Z
/// (e.g. verified keys), BatchRepair applies every certain fix the rules
/// and master data entail, tuple by tuple, without user interaction.
/// The per-tuple step is RepairOneTuple (core/repair_tuple.h), shared
/// verbatim with the streaming point-of-entry engine (src/stream/).
/// Tuples whose (Sigma, Dm) analysis conflicts are left untouched and
/// reported; tuples not fully covered are partially repaired (every
/// applied fix is still certain relative to Z).
///
/// Threading model: repair is embarrassingly parallel across tuples —
/// each tuple's (Sigma, Dm) saturation is independent, and `Saturator`
/// and `MasterIndex` are safe for concurrent read-only use after
/// construction (see saturation.h / master_index.h). With
/// `RepairOptions::num_threads > 1` the input is split into contiguous
/// row-range shards, each shard is repaired by a pool worker
/// (util/thread_pool.h), and shard results are merged in row order, so
/// the output — repaired relation, every counter, and the order of
/// `conflict_rows` — is value-identical (byte-identical under WriteCsv)
/// to the sequential `num_threads == 1` path, which still runs the
/// original tuple-at-a-time loop.
///
/// Interning contract (see value_pool.h): all shards share the master
/// relation's immutable ValuePool read-only; each shard rebases its rows
/// into a shard-local pool, interns every value its saturations produce
/// locally, and the changed rows are merged back into the output
/// relation's pool on the calling thread, in shard order. No pool is ever
/// written concurrently.

#ifndef CERTFIX_CORE_BATCH_REPAIR_H_
#define CERTFIX_CORE_BATCH_REPAIR_H_

#include "analysis/analyze_mode.h"
#include "core/saturation.h"
#include "util/result.h"

namespace certfix {

/// \brief Execution knobs for BatchRepair.
struct RepairOptions {
  /// Worker count. 1 = the original sequential loop (the differential-
  /// testing reference); 0 = one worker per hardware thread.
  size_t num_threads = 1;
  /// Rows per shard. 0 = divide the input evenly over the workers.
  size_t chunk_size = 0;
  /// Ruleset analysis before repairing (RepairChecked only): off trusts
  /// (Sigma, Dm, Z) as-is, warn logs analyzer diagnostics, strict refuses
  /// inconsistent rulesets with the witness in the error (analyzer.h).
  AnalyzeMode analyze_first = AnalyzeMode::kOff;
  /// Replay repair outcomes for repeated relevant projections via a
  /// per-shard RepairMemo (core/repair_memo.h). Output-invisible — the
  /// differential suites A/B it off via --no-memo.
  bool use_memo = true;
};

/// \brief Outcome of repairing one relation.
struct BatchRepairResult {
  Relation repaired;
  size_t tuples_fully_covered = 0;  ///< certain fix reached (covered = R)
  size_t tuples_partial = 0;        ///< some but not all attrs covered
  size_t tuples_untouched = 0;      ///< nothing beyond Z derivable
  size_t tuples_conflicting = 0;    ///< unique-fix check failed
  size_t cells_changed = 0;
  size_t memo_hits = 0;    ///< repairs replayed from a shard memo
  size_t memo_misses = 0;  ///< repairs computed (and memoized)
  /// Row positions with conflicts (left unmodified), ascending.
  std::vector<size_t> conflict_rows;
};

/// \brief Batch repair engine.
class BatchRepair {
 public:
  explicit BatchRepair(const Saturator& sat, RepairOptions options = {})
      : sat_(&sat), options_(options) {}

  /// Repairs a copy of `data`, trusting t[Z] of every tuple. Tuples that
  /// fail the unique-fix check are reported and left unchanged.
  BatchRepairResult Repair(const Relation& data, AttrSet trusted) const;

  /// Repair behind the options' analyze_first gate: runs the ruleset
  /// analyzer first and, under strict, returns Inconsistent (witness in
  /// the message) instead of repairing when the ruleset has errors. With
  /// analyze_first = off this is exactly Repair.
  Result<BatchRepairResult> RepairChecked(const Relation& data,
                                          AttrSet trusted) const;

  const RepairOptions& options() const { return options_; }

 private:
  /// Per-shard tallies and changed rows; `conflict_rows` and the row
  /// positions in `changed` are absolute.
  struct ShardResult {
    size_t fully_covered = 0;
    size_t partial = 0;
    size_t untouched = 0;
    size_t conflicting = 0;
    size_t cells_changed = 0;
    size_t memo_hits = 0;
    size_t memo_misses = 0;
    std::vector<size_t> conflict_rows;
    /// Rows whose fix differs from the input, in row order.
    std::vector<std::pair<size_t, Tuple>> changed;
  };

  /// Repairs rows [begin, end) of `data` into `out`. With `local_pool`
  /// set, each row is rebased into it first so all interning stays
  /// shard-local; with it null (the sequential path) rows keep sharing
  /// `data`'s pool. The eager per-row rebase costs one hash per cell even
  /// for rows saturation never changes — the price of keeping pools
  /// strictly single-writer. Deferring it needs copy-on-write tuple
  /// pools (rebase on first applied move); candidate future optimization
  /// if profiles show clean-row rebasing dominating parallel repair.
  void RepairRange(const Relation& data, AttrSet trusted, AttrSet all,
                   size_t begin, size_t end, const PoolPtr& local_pool,
                   ShardResult* out) const;

  const Saturator* sat_;
  RepairOptions options_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_BATCH_REPAIR_H_
