#include "core/dependency_graph.h"

#include <algorithm>

namespace certfix {

DependencyGraph::DependencyGraph(const RuleSet& rules) : rules_(&rules) {
  size_t n = rules.size();
  out_.resize(n);
  in_.resize(n);
  for (size_t u = 0; u < n; ++u) {
    AttrId b = rules.at(u).rhs();
    for (size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      if (rules.at(v).premise_set().Contains(b)) {
        out_[u].push_back(v);
        in_[v].push_back(u);
      }
    }
  }
}

bool DependencyGraph::HasEdge(size_t u, size_t v) const {
  return std::find(out_[u].begin(), out_[u].end(), v) != out_[u].end();
}

bool DependencyGraph::HasCycle() const {
  size_t n = out_.size();
  std::vector<int> state(n, 0);  // 0 unseen, 1 on stack, 2 done
  std::vector<std::pair<size_t, size_t>> stack;
  for (size_t start = 0; start < n; ++start) {
    if (state[start] != 0) continue;
    stack.emplace_back(start, 0);
    state[start] = 1;
    while (!stack.empty()) {
      auto& [u, i] = stack.back();
      if (i < out_[u].size()) {
        size_t v = out_[u][i++];
        if (state[v] == 1) return true;
        if (state[v] == 0) {
          state[v] = 1;
          stack.emplace_back(v, 0);
        }
      } else {
        state[u] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

std::vector<size_t> DependencyGraph::RulesReadingMasterAttrs(
    const AttrSet& master_attrs) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < rules_->size(); ++i) {
    const EditingRule& rule = rules_->at(i);
    AttrSet reads;
    for (AttrId a : rule.lhsm()) reads.Add(a);
    reads.Add(rule.rhsm());
    if (reads.Intersects(master_attrs)) out.push_back(i);
  }
  return out;
}

std::vector<size_t> DependencyGraph::ReachableFrom(
    const std::vector<size_t>& seeds) const {
  std::vector<bool> seen(out_.size(), false);
  std::vector<size_t> stack;
  for (size_t s : seeds) {
    if (s < seen.size() && !seen[s]) {
      seen[s] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    size_t u = stack.back();
    stack.pop_back();
    for (size_t v : out_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  std::vector<size_t> out;
  for (size_t i = 0; i < seen.size(); ++i) {
    if (seen[i]) out.push_back(i);
  }
  return out;
}

AttrSet DependencyGraph::InvalidatedRegion(const AttrSet& master_attrs) const {
  AttrSet region;
  for (size_t i : ReachableFrom(RulesReadingMasterAttrs(master_attrs))) {
    region.Add(rules_->at(i).rhs());
  }
  return region;
}

std::string DependencyGraph::ToDot() const {
  std::string out = "digraph sigma {\n";
  for (size_t u = 0; u < out_.size(); ++u) {
    out += "  \"" + rules_->at(u).name() + "\";\n";
  }
  for (size_t u = 0; u < out_.size(); ++u) {
    for (size_t v : out_[u]) {
      out += "  \"" + rules_->at(u).name() + "\" -> \"" +
             rules_->at(v).name() + "\";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace certfix
