/// \file fix_state.h
/// \brief Single-step fix semantics: states, enabled moves, and application
/// (the t ->((Z,Tc),phi,tm) t' relation of Sect. 3).

#ifndef CERTFIX_CORE_FIX_STATE_H_
#define CERTFIX_CORE_FIX_STATE_H_

#include <string>
#include <vector>

#include "core/master_index.h"
#include "relational/attr_set.h"
#include "rules/rule_set.h"

namespace certfix {

/// \brief One justified rule application: rule `rule_idx` with master tuple
/// `master_idx` sets attribute `attr` to `value`.
struct FixMove {
  size_t rule_idx = 0;
  size_t master_idx = 0;
  AttrId attr = 0;
  Value value;
};

/// \brief Dependency record of one repair: every master-index probe the
/// saturation performed, as (rule, key-values) hashes.
///
/// A repair is a deterministic function of the input tuple, Z0, Sigma, and
/// the answers to the RhsValues probes it issues; if none of a tuple's
/// recorded probes has a changed answer after a master-data delta, replaying
/// the repair takes the identical path and produces the identical fix. The
/// incremental engine (src/incremental/) therefore re-repairs exactly the
/// tuples holding an affected probe hash. Hash collisions only ever
/// over-invalidate (an extra re-repair), never under-invalidate.
struct ProbeLog {
  std::vector<uint64_t> hashes;

  void Add(uint64_t h) { hashes.push_back(h); }
  void Clear() { hashes.clear(); }
};

/// Hash of one probe: rule `rule_idx` keyed by t[attrs] (input side,
/// `attrs` = lhs(phi)). Must stay consistent with MasterProbeKeyHash —
/// equal value lists under the same rule produce equal hashes, which is
/// what ties a recorded input-side probe to a master-side row projection.
uint64_t ProbeKeyHash(size_t rule_idx, const Tuple& t,
                      const std::vector<AttrId>& attrs);

/// Hash of the probe key a master row answers for rule `rule_idx`:
/// dm[row][attrs] with `attrs` = lhsm(phi). |lhs| == |lhsm| and the
/// correspondence is positional, so a master row matches a recorded probe
/// iff the value lists are equal — iff the hashes are equal (modulo
/// collisions, which are sound).
uint64_t MasterProbeKeyHash(size_t rule_idx, const Relation& dm, size_t row,
                            const std::vector<AttrId>& attrs);

/// \brief The evolving state of a fixing process: the current tuple and the
/// validated attribute set Z. Z only grows; an attribute's value changes at
/// most once (when it enters Z via a move) — the monotonicity that makes
/// the uniqueness analysis of saturation.h exact.
class FixState {
 public:
  FixState(Tuple t, AttrSet z0) : tuple_(std::move(t)), z_(z0), z0_(z0) {}

  const Tuple& tuple() const { return tuple_; }
  AttrSet validated() const { return z_; }
  AttrSet initial() const { return z0_; }
  const std::vector<FixMove>& applied() const { return applied_; }

  /// A move is enabled iff premise(phi) is validated, rhs(phi) is not,
  /// t matches tp, and t[X] = tm[Xm] (Sect. 3's justified application).
  bool IsEnabled(const RuleSet& rules, const Relation& dm,
                 const FixMove& move) const;

  /// All enabled moves under the current state.
  std::vector<FixMove> EnabledMoves(const RuleSet& rules,
                                    const MasterIndex& index) const;

  /// Applies an enabled move: t[B] := tm[Bm], Z := Z + {B}.
  void Apply(const RuleSet& rules, const FixMove& move);

  /// True if no move is enabled (the fixpoint condition of Sect. 3).
  bool IsFixpoint(const RuleSet& rules, const MasterIndex& index) const {
    return EnabledMoves(rules, index).empty();
  }

 private:
  Tuple tuple_;
  AttrSet z_;
  AttrSet z0_;
  std::vector<FixMove> applied_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_FIX_STATE_H_
