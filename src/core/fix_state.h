/// \file fix_state.h
/// \brief Single-step fix semantics: states, enabled moves, and application
/// (the t ->((Z,Tc),phi,tm) t' relation of Sect. 3).

#ifndef CERTFIX_CORE_FIX_STATE_H_
#define CERTFIX_CORE_FIX_STATE_H_

#include <string>
#include <vector>

#include "core/master_index.h"
#include "relational/attr_set.h"
#include "rules/rule_set.h"

namespace certfix {

/// \brief One justified rule application: rule `rule_idx` with master tuple
/// `master_idx` sets attribute `attr` to `value`.
struct FixMove {
  size_t rule_idx = 0;
  size_t master_idx = 0;
  AttrId attr = 0;
  Value value;
};

/// \brief The evolving state of a fixing process: the current tuple and the
/// validated attribute set Z. Z only grows; an attribute's value changes at
/// most once (when it enters Z via a move) — the monotonicity that makes
/// the uniqueness analysis of saturation.h exact.
class FixState {
 public:
  FixState(Tuple t, AttrSet z0) : tuple_(std::move(t)), z_(z0), z0_(z0) {}

  const Tuple& tuple() const { return tuple_; }
  AttrSet validated() const { return z_; }
  AttrSet initial() const { return z0_; }
  const std::vector<FixMove>& applied() const { return applied_; }

  /// A move is enabled iff premise(phi) is validated, rhs(phi) is not,
  /// t matches tp, and t[X] = tm[Xm] (Sect. 3's justified application).
  bool IsEnabled(const RuleSet& rules, const Relation& dm,
                 const FixMove& move) const;

  /// All enabled moves under the current state.
  std::vector<FixMove> EnabledMoves(const RuleSet& rules,
                                    const MasterIndex& index) const;

  /// Applies an enabled move: t[B] := tm[Bm], Z := Z + {B}.
  void Apply(const RuleSet& rules, const FixMove& move);

  /// True if no move is enabled (the fixpoint condition of Sect. 3).
  bool IsFixpoint(const RuleSet& rules, const MasterIndex& index) const {
    return EnabledMoves(rules, index).empty();
  }

 private:
  Tuple tuple_;
  AttrSet z_;
  AttrSet z0_;
  std::vector<FixMove> applied_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_FIX_STATE_H_
