/// \file certain_fix.h
/// \brief Algorithm CertainFix / CertainFix+ (Sect. 5, Fig. 3): the
/// interactive data-monitoring loop that finds certain fixes at the point
/// of data entry.

#ifndef CERTFIX_CORE_CERTAIN_FIX_H_
#define CERTFIX_CORE_CERTAIN_FIX_H_

#include <memory>

#include "core/cregion.h"
#include "core/dependency_graph.h"
#include "core/suggest.h"
#include "core/suggestion_cache.h"
#include "core/transfix.h"
#include "core/user.h"
#include "util/timer.h"

namespace certfix {

/// \brief Engine configuration.
struct CertainFixOptions {
  bool use_cache = true;     ///< Suggest+ (CertainFix+) vs plain Suggest
  size_t max_rounds = 16;    ///< interaction budget per tuple
  CRegionOptions region;     ///< initial-region derivation knobs
};

/// \brief Per-round record (drives the Sect. 6 experiments).
struct RoundRecord {
  AttrSet suggested;
  AttrSet asserted;
  size_t auto_fixed = 0;   ///< attributes fixed by TransFix this round
  bool cache_hit = false;  ///< suggestion served from the BDD cache
  double seconds = 0.0;    ///< wall time of the round's engine work
  Tuple after;             ///< tuple state at the end of the round
  AttrSet auto_changed;    ///< cumulative rule-written attributes so far
};

/// \brief Outcome of fixing one input tuple.
struct FixOutcome {
  Tuple fixed;
  AttrSet validated;
  bool completed = false;       ///< every attribute covered (certain fix)
  bool conflict = false;        ///< rules + master data conflicted
  std::vector<RoundRecord> rounds;
  AttrSet user_asserted;        ///< attributes supplied by the user
  AttrSet auto_fixed;           ///< attributes fixed by the rules

  size_t num_rounds() const { return rounds.size(); }
  double total_seconds() const {
    double s = 0;
    for (const auto& r : rounds) s += r.seconds;
    return s;
  }
};

/// \brief The interactive framework of Fig. 3.
///
/// Construction precomputes the certain regions (via CompCRegion), the
/// dependency graph, and the master hash indexes; Fix() runs the
/// interaction loop against a UserOracle.
class CertainFixEngine {
 public:
  /// `dm` must outlive the engine. Regions are computed on construction
  /// and reused for every tuple (Sect. 5 (1)).
  CertainFixEngine(RuleSet rules, const Relation& dm,
                   CertainFixOptions options = {});

  /// Runs the loop of Fig. 3 on one input tuple.
  FixOutcome Fix(const Tuple& input, UserOracle* user);

  /// The precomputed regions, best quality first.
  const std::vector<RankedRegion>& regions() const { return regions_; }
  /// The initial suggestion (Z of the highest-quality region), or the
  /// region at `pick` (e.g. median for the CRMQ experiment).
  const RankedRegion& initial_region(size_t pick = 0) const {
    return regions_[std::min(pick, regions_.size() - 1)];
  }
  /// Overrides which precomputed region seeds the first suggestion.
  void set_initial_pick(size_t pick) { initial_pick_ = pick; }

  const SuggestionCache::Stats& cache_stats() const {
    return cache_.stats();
  }
  const RuleSet& rules() const { return rules_; }
  const Saturator& saturator() const { return *sat_; }

 private:
  RuleSet rules_;
  const Relation* dm_;
  CertainFixOptions options_;
  std::unique_ptr<MasterIndex> index_;
  std::unique_ptr<DependencyGraph> graph_;
  std::unique_ptr<Saturator> sat_;
  std::unique_ptr<TransFix> transfix_;
  std::unique_ptr<Suggester> suggester_;
  std::vector<RankedRegion> regions_;
  SuggestionCache cache_;
  size_t initial_pick_ = 0;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_CERTAIN_FIX_H_
