/// \file direct_fix.h
/// \brief PTIME consistency/coverage under the *direct fix* semantics
/// (Sect. 4.1, special case (5); Theorem 5).
///
/// Direct fixes restrict (a) every rule to have Xp a subset of X, and (b)
/// every fixing step to be justified by the original region (Z, Tc) without
/// extension. Consistency then reduces to the emptiness of the join queries
/// Q_{phi1,phi2} of the Theorem 5 proof, which we evaluate with hash joins
/// over Dm.

#ifndef CERTFIX_CORE_DIRECT_FIX_H_
#define CERTFIX_CORE_DIRECT_FIX_H_

#include "core/region.h"
#include "relational/relation.h"
#include "rules/rule_set.h"
#include "util/result.h"

namespace certfix {

/// \brief Partial master tuples returned by Q_phi (proof of Thm 5):
/// projections of master rows that match both tp[Xp] (translated to the
/// master side) and tc[X].
struct DirectFixWitness {
  size_t rule_a = 0;
  size_t rule_b = 0;
  AttrId attr = 0;       ///< shared rhs B
  Value value_a;
  Value value_b;
};

/// \brief Direct-fix analyses for one region row (tableaux are checked row
/// by row, as in the proofs).
class DirectFixChecker {
 public:
  DirectFixChecker(const RuleSet& rules, const Relation& dm)
      : rules_(&rules), dm_(&dm) {}

  /// All rules must be direct; otherwise Unsupported.
  Status ValidateShape() const;

  /// Consistency of (Sigma, Dm) relative to (Z, {tc}) under direct-fix
  /// semantics: no pair of rules in Sigma_Z proposes conflicting B values
  /// on master tuples agreeing on their shared X (query Q_{phi1,phi2}).
  Result<bool> IsConsistent(const std::vector<AttrId>& z,
                            const PatternTuple& tc,
                            std::vector<DirectFixWitness>* witnesses =
                                nullptr) const;

  /// Certain-region test for direct fixes (proof of Thm 5, part II):
  /// consistency plus, for each B outside Z, a rule with X inside Z,
  /// constant tc[X], pattern compatibility, and a matching master tuple.
  Result<bool> IsCertainRegion(const std::vector<AttrId>& z,
                               const PatternTuple& tc) const;

  /// Tableau-level wrappers (every row must pass).
  Result<bool> IsConsistent(const Region& region) const;
  Result<bool> IsCertainRegion(const Region& region) const;

 private:
  // Sigma_Z: indices of rules with lhs inside Z and rhs outside Z.
  std::vector<size_t> SigmaZ(const AttrSet& z_set) const;

  // Evaluates Q_phi: master row indices matching pattern and tc.
  Result<std::vector<size_t>> EvalQ(const EditingRule& rule,
                                    const PatternTuple& tc) const;

  const RuleSet* rules_;
  const Relation* dm_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_DIRECT_FIX_H_
