/// \file applicable_rules.h
/// \brief Derivation of the applicable rule set Sigma_t[Z] (Sect. 5.2).
///
/// For a tuple t with validated attributes Z, a rule phi contributes a
/// refined rule phi+ iff (a) rhs(phi) is outside Z, (b) t matches the
/// pattern on Xp ∩ Z, and (c) some master tuple matches the pattern on the
/// master side of Xp ∩ X and agrees with t on the master side of X ∩ Z.
/// phi+ extends the pattern attributes with X ∩ Z and pins their values to
/// t's validated constants (Prop 20 shows Sigma_t[Z] suffices).

#ifndef CERTFIX_CORE_APPLICABLE_RULES_H_
#define CERTFIX_CORE_APPLICABLE_RULES_H_

#include <map>
#include <memory>

#include "core/master_index.h"
#include "rules/rule_set.h"

namespace certfix {

/// \brief Lazily built per-(rule, key-subset) master indexes used by
/// condition (c). Cached because the validated sets repeat heavily across
/// a stream of input tuples entering through the same initial region.
class PartialMasterIndexCache {
 public:
  explicit PartialMasterIndexCache(const Relation& dm) : dm_(&dm) {}

  /// Master rows whose projection on `master_attrs` equals t's projection
  /// on `r_attrs` (positionally).
  const std::vector<size_t>& Lookup(const std::vector<AttrId>& master_attrs,
                                    const Tuple& t,
                                    const std::vector<AttrId>& r_attrs);

  size_t num_indexes() const { return cache_.size(); }
  const Relation& master() const { return *dm_; }

 private:
  const Relation* dm_;
  std::map<std::vector<AttrId>, std::unique_ptr<KeyIndex>> cache_;
  std::vector<size_t> all_rows_;
  bool all_rows_ready_ = false;
};

/// \brief Derives Sigma_t[Z]. Also reports, per produced rule, the index of
/// the originating rule in Sigma.
struct ApplicableRules {
  RuleSet rules;
  std::vector<size_t> origin;  ///< origin[i] = index in the source Sigma
};

ApplicableRules DeriveApplicableRules(const RuleSet& sigma,
                                      const Relation& dm,
                                      PartialMasterIndexCache* cache,
                                      const Tuple& t, AttrSet z);

}  // namespace certfix

#endif  // CERTFIX_CORE_APPLICABLE_RULES_H_
