/// \file repair_tuple.h
/// \brief The per-tuple certain-fix entry point shared by the batch and
/// streaming repair engines.
///
/// BatchRepair (whole-relation, src/core/batch_repair.h) and
/// StreamRepairEngine (point-of-entry, src/stream/stream_repair.h) apply
/// exactly the same repair to one tuple: trust t[Z], run the exact
/// unique-fix check of Theorem 4 (Saturator::CheckUniqueFix), and either
/// adopt the (possibly partial) fix or leave the tuple untouched when the
/// rules and master data conflict. RepairOneTuple is that shared step,
/// factored out of batch_repair.cc so the two engines cannot drift — the
/// streaming differential tests rely on both calling this one function.
///
/// Thread safety: RepairOneTuple keeps all mutable state on the stack and
/// in the caller-owned `bridge`; it inherits the Saturator storage-layer
/// contract (saturation.h) — applying a move interns into the *input
/// tuple's* pool, so concurrent callers must hand in tuples backed by
/// caller-owned pools (a shard-local pool in both engines).

#ifndef CERTFIX_CORE_REPAIR_TUPLE_H_
#define CERTFIX_CORE_REPAIR_TUPLE_H_

#include "core/saturation.h"

namespace certfix {

class RepairMemo;

/// How one tuple fared under repair (the four BatchRepair counters).
enum class FixClass {
  kFullyCovered,  ///< certain fix reached (covered = R)
  kPartial,       ///< some but not all attributes covered
  kUntouched,     ///< nothing beyond Z derivable
  kConflicting,   ///< unique-fix check failed; tuple left unchanged
};

/// \brief Per-tuple repair outcome record. Plain values only (no pool or
/// relation references), so reports can cross thread boundaries freely.
struct FixReport {
  FixClass kind = FixClass::kUntouched;
  size_t cells_changed = 0;  ///< attributes whose value differs from input
  AttrSet covered;           ///< Z plus every attribute the rules fixed

  bool conflicting() const { return kind == FixClass::kConflicting; }
};

/// \brief One repaired tuple: the fixed row plus its report. On conflict
/// the input is left unchanged and `fixed` is an empty default Tuple —
/// callers use the row they already hold (the batch engine skips the row
/// entirely; the stream worker re-emits its input values).
struct TupleRepair {
  Tuple fixed;
  FixReport report;
};

/// Repairs one tuple, trusting t[Z]: the unique-fix check plus the
/// classification both engines tally. `all` is the schema's full attribute
/// set (hoisted by callers out of their per-tuple loop); `bridge`, when
/// given, must translate `row`'s pool into the master pool and may be
/// reused across many rows of the same pool. `probes`, when given, records
/// the repair's master-index dependency set (fix_state.h) — the incremental
/// engine re-repairs a tuple only when a master delta hits one of its
/// recorded probes. `memo`, when given, short-circuits the whole check
/// for a previously seen relevant projection (core/repair_memo.h): on a
/// hit the recorded outcome is replayed and the entry's probe hashes are
/// appended to `probes`; on a miss the fresh outcome is memoized. The
/// memo must be keyed on `row`'s pool (one memo per shard pool
/// generation) and have been built with the same `trusted` set.
TupleRepair RepairOneTuple(const Saturator& sat, const Tuple& row,
                           AttrSet trusted, AttrSet all,
                           PoolBridge* bridge = nullptr,
                           ProbeLog* probes = nullptr,
                           RepairMemo* memo = nullptr);

}  // namespace certfix

#endif  // CERTFIX_CORE_REPAIR_TUPLE_H_
