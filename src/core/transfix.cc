#include "core/transfix.h"

#include <deque>

namespace certfix {

TransFixResult TransFix::Run(const Tuple& t, AttrSet z) const {
  TransFixResult result;
  result.tuple = t;
  result.validated = z;

  size_t n = rules_->size();
  // Memoized id translation for the master probes below (one hash per
  // distinct input value across all rounds; identity for master tuples).
  PoolBridge bridge(result.tuple.pool().get(), index_->pool().get());
  // Node states per Fig. 5: unusable (initial), usable (in vset), candidate
  // (in uset), consumed (removed from vset after processing).
  enum class State { kUnusable, kUsable, kCandidate, kConsumed };
  std::vector<State> state(n, State::kUnusable);
  std::deque<size_t> vset;

  auto premises_validated = [&](size_t v) {
    return rules_->at(v).premise_set().SubsetOf(result.validated);
  };

  // Lines 1-4: collect rules whose lhs and pattern attributes are validated.
  for (size_t v = 0; v < n; ++v) {
    if (premises_validated(v)) {
      state[v] = State::kUsable;
      vset.push_back(v);
    }
  }

  // Lines 5-15: consume vset, fixing attributes and promoting successors.
  while (!vset.empty()) {
    size_t v = vset.front();
    vset.pop_front();
    if (state[v] == State::kConsumed) continue;
    state[v] = State::kConsumed;

    const EditingRule& rule = rules_->at(v);
    AttrId b = rule.rhs();
    bool fixed_now = false;
    if (!result.validated.Contains(b) &&
        rule.pattern().Matches(result.tuple)) {
      const MasterIndex::RhsSummary& values =
          index_->RhsValues(v, result.tuple, &bridge);
      if (values.size() == 1) {
        // Exactly one distinct master value: safe to apply.
        const MasterIndex::RhsValue& rv = values.front();
        result.tuple.Set(b, rv.value);
        result.validated.Add(b);
        result.steps.push_back(FixMove{v, rv.row, b, rv.value});
        fixed_now = true;
      } else if (values.size() > 1) {
        // Disagreeing master tuples would mean a non-unique fix, which
        // the validation step before TransFix rules out — skip
        // defensively.
        result.skipped_conflicts.Add(b);
      }
    }
    if (!fixed_now && !result.validated.Contains(b)) continue;

    // Lines 9-15: inspect edges (v, u); promote u when its premises are now
    // validated, or park it as a candidate otherwise.
    for (size_t u : graph_->Successors(v)) {
      if (state[u] == State::kConsumed || state[u] == State::kUsable) {
        continue;
      }
      if (premises_validated(u)) {
        state[u] = State::kUsable;
        vset.push_back(u);
      } else {
        state[u] = State::kCandidate;
      }
    }
  }
  return result;
}

}  // namespace certfix
