/// \file dependency_graph.h
/// \brief Dependency graph of a rule set (Sect. 5.1, Fig. 4).

#ifndef CERTFIX_CORE_DEPENDENCY_GRAPH_H_
#define CERTFIX_CORE_DEPENDENCY_GRAPH_H_

#include <string>
#include <vector>

#include "rules/rule_set.h"

namespace certfix {

/// \brief Directed graph over rules: edge (u, v) when rhs(phi_u) appears in
/// lhs(phi_v) or in the pattern attributes of phi_v — i.e. applying phi_u
/// may enable phi_v, so phi_u is applied first.
///
/// Computed once per Sigma and reused across all input tuples (Sect. 5.1).
class DependencyGraph {
 public:
  explicit DependencyGraph(const RuleSet& rules);

  size_t num_nodes() const { return out_.size(); }
  /// Successors of node u: rules whose premises mention rhs(phi_u).
  const std::vector<size_t>& Successors(size_t u) const { return out_[u]; }
  /// Predecessors of node v.
  const std::vector<size_t>& Predecessors(size_t v) const { return in_[v]; }

  bool HasEdge(size_t u, size_t v) const;

  /// True if the graph has a directed cycle (rules may feed each other;
  /// legal, but interesting to detect for diagnostics).
  bool HasCycle() const;

  /// Region invalidation (incremental engine, src/incremental/): rules
  /// whose master side reads any attribute in `master_attrs` — i.e. Xm or
  /// Bm intersects it. A master-data delta that only touches attributes
  /// outside every rule's (Xm, Bm) cannot change any probe answer, so an
  /// empty result means the delta invalidates nothing.
  std::vector<size_t> RulesReadingMasterAttrs(const AttrSet& master_attrs) const;

  /// Transitive closure over successor edges from `seeds` (seeds
  /// included), ascending. If a seed rule's firing changes, only rules in
  /// this closure can fire differently downstream — the rule-level
  /// invalidated region of a change. Analysis/diagnostics API: the
  /// engine's live path needs only RulesReadingMasterAttrs (its probe
  /// index is already exact at the tuple level).
  std::vector<size_t> ReachableFrom(const std::vector<size_t>& seeds) const;

  /// Input-side attributes a master delta touching `master_attrs` can
  /// rewrite: the rhs attributes of ReachableFrom(RulesReadingMasterAttrs).
  /// Cells outside this region are provably unaffected — an a-priori
  /// bound on a delta's blast radius (analysis/diagnostics, like
  /// ReachableFrom).
  AttrSet InvalidatedRegion(const AttrSet& master_attrs) const;

  /// Graphviz dot rendering for documentation and debugging.
  std::string ToDot() const;

  const RuleSet& rules() const { return *rules_; }

 private:
  const RuleSet* rules_;
  std::vector<std::vector<size_t>> out_;
  std::vector<std::vector<size_t>> in_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_DEPENDENCY_GRAPH_H_
