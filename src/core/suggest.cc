#include "core/suggest.h"

#include <algorithm>

#include "util/random.h"

namespace certfix {

AttrSet Suggester::ClosureOf(const RuleSet& rules, AttrSet z) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const EditingRule& rule : rules) {
      if (z.Contains(rule.rhs())) continue;
      if (rule.premise_set().SubsetOf(z)) {
        z.Add(rule.rhs());
        changed = true;
      }
    }
  }
  return z;
}

bool Suggester::VerifyRegionRow(const RuleSet& applicable, const Tuple& t,
                                AttrSet z_validated,
                                const std::vector<AttrId>& z_full) {
  // Probe master tuples compatible with t on the validated lhs part of
  // some applicable rule; cap the number of probes. Refined rules keep
  // their (Xm, Bm) shape, so the engine's indexes are shared when given.
  constexpr size_t kMaxProbes = 16;
  MasterIndex index = base_index_ != nullptr
                          ? MasterIndex(applicable, *dm_, *base_index_)
                          : MasterIndex(applicable, *dm_);
  Saturator sat(applicable, *dm_, index);
  if (!dom_cache_.has_value()) {
    dom_cache_ = ActiveDomain(*rules_, *dm_);
    // Refined patterns also pin values of t; fresh-value generation only
    // needs a superset, and probe rows are concrete on mentioned
    // attributes, so dom(Sigma, Dm) suffices.
  }
  sat.SetDomHint(&*dom_cache_);
  CoverageChecker coverage(sat);

  // Choose probe candidates: masters matching the first rule with a
  // non-empty validated lhs intersection; otherwise a fixed-size sample.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < applicable.size() && candidates.empty(); ++i) {
    const EditingRule& rule = applicable.at(i);
    std::vector<AttrId> r_key;
    std::vector<AttrId> m_key;
    for (size_t p = 0; p < rule.lhs().size(); ++p) {
      if (z_validated.Contains(rule.lhs()[p])) {
        r_key.push_back(rule.lhs()[p]);
        m_key.push_back(rule.lhsm()[p]);
      }
    }
    if (r_key.empty()) continue;
    candidates = partial_cache_.Lookup(m_key, t, r_key);
  }
  if (candidates.empty()) {
    size_t n = std::min(kMaxProbes, dm_->size());
    for (size_t i = 0; i < n; ++i) candidates.push_back(i);
  }

  size_t probes = 0;
  for (size_t m : candidates) {
    if (probes++ >= kMaxProbes) break;
    std::optional<PatternTuple> row = BuildRowForMaster(
        applicable, z_full, dm_->at(m), &t, z_validated);
    if (!row.has_value()) continue;
    Region probe = Region::Of(applicable.r_schema(), z_full);
    if (!probe.AddRow(*row).ok()) continue;
    Result<bool> ok = coverage.IsCertainRegion(probe);
    if (ok.ok() && *ok) return true;
  }
  return false;
}

AttrSet Suggester::Suggest(const Tuple& t, AttrSet z) {
  const SchemaPtr& schema = rules_->r_schema();
  AttrSet all = schema->AllAttrs();
  if (z == all) return AttrSet();

  ApplicableRules applicable = Applicable(t, z);
  const RuleSet& sigma_t = applicable.rules;

  // Fig. 6 line 2: compute a certain-region attribute list for
  // (Sigma_t[Z], Dm) containing Z, using the randomized backward
  // minimization of [20] (CompCRegion): start from all attributes and
  // repeatedly drop attributes outside Z while the schema-level closure
  // still covers R; keep the smallest list over several restarts.
  // (Attributes no applicable rule can fix survive every drop attempt.)
  constexpr size_t kTrials = 12;
  Rng rng(0x5eedULL ^ z.bits());
  AttrSet best = all;
  std::vector<AttrId> droppable = all.Minus(z).ToVector();
  for (size_t trial = 0; trial < kTrials; ++trial) {
    rng.Shuffle(&droppable);
    AttrSet zz = all;
    for (AttrId a : droppable) {
      AttrSet probe = zz;
      probe.Remove(a);
      if (ClosureOf(sigma_t, probe) == all) zz = probe;
    }
    if (zz.Count() < best.Count()) best = zz;
  }
  AttrSet s = best.Minus(z);

  if (s.Empty()) {
    // Z alone suffices at the schema level; nothing to suggest means the
    // remaining attributes should be derivable — verify and fall back.
    s = all.Minus(z);
    return s;
  }

  std::vector<AttrId> z_full = z.Union(s).ToVector();
  if (ClosureOf(sigma_t, z.Union(s)) == all &&
      VerifyRegionRow(sigma_t, t, z, z_full)) {
    return s;
  }
  // Fallback: ask the user for everything not yet validated. (R, {t})
  // is trivially a certain region.
  return all.Minus(z);
}

bool Suggester::IsSuggestion(const Tuple& t, AttrSet z, AttrSet s) {
  const SchemaPtr& schema = rules_->r_schema();
  AttrSet all = schema->AllAttrs();
  if (s.Intersects(z)) s = s.Minus(z);
  if (s.Empty()) return false;
  if (z.Union(s) == all) return true;  // trivial region
  ApplicableRules applicable = Applicable(t, z);
  if (ClosureOf(applicable.rules, z.Union(s)) != all) return false;
  return VerifyRegionRow(applicable.rules, t, z, z.Union(s).ToVector());
}

}  // namespace certfix
