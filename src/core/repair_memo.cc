#include "core/repair_memo.h"

#include <algorithm>

namespace certfix {

RepairMemo::RepairMemo(const RuleSet& rules, AttrSet trusted)
    : trusted_(trusted) {
  AttrSet relevant;
  for (const EditingRule& rule : rules) {
    relevant = relevant.Union(rule.premise_set());
    relevant.Add(rule.rhs());
  }
  relevant_ = relevant.ToVector();
  table_.Reset(relevant_.size());
}

void RepairMemo::ProjectKey(const Tuple& row, IdKey* out) const {
  out->clear();
  for (AttrId a : relevant_) out->push_back(row.id_at(a));
}

const RepairMemo::Entry* RepairMemo::Find(const Tuple& row) {
  thread_local IdKey key;
  ProjectKey(row, &key);
  const uint32_t slot = table_.Find(key.data());
  if (slot == FlatIdTable::kNotFound) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &entries_[slot];
}

void RepairMemo::Prefetch(const Tuple& row) const {
  thread_local IdKey key;
  ProjectKey(row, &key);
  table_.Prefetch(table_.Hash(key.data()));
}

void RepairMemo::Insert(const Tuple& row, const TupleRepair& repair,
                        const ProbeLog* probes) {
  if (live_entries_ >= kMaxEntries) Clear();
  thread_local IdKey key;
  ProjectKey(row, &key);

  Entry entry;
  entry.report = repair.report;
  entry.key = key;
  if (!repair.report.conflicting()) {
    for (AttrId a : row.DiffAttrs(repair.fixed)) {
      entry.changed.emplace_back(a, repair.fixed.at(a));
    }
  }
  if (probes != nullptr) {
    entry.probes = probes->hashes;
    std::sort(entry.probes.begin(), entry.probes.end());
    entry.probes.erase(
        std::unique(entry.probes.begin(), entry.probes.end()),
        entry.probes.end());
  }

  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
  } else {
    slot = static_cast<uint32_t>(entries_.size());
  }
  const uint32_t got = table_.InsertOrGet(key.data(), slot);
  if (got != slot) return;  // already memoized (Find raced a re-insert)
  if (!free_slots_.empty()) {
    free_slots_.pop_back();
  } else {
    entries_.emplace_back();
  }
  for (uint64_t h : entry.probes) probe_to_entries_[h].push_back(slot);
  entries_[slot] = std::move(entry);
  ++live_entries_;
}

TupleRepair RepairMemo::Replay(const Entry& entry, const Tuple& row) const {
  TupleRepair out;
  out.report = entry.report;
  if (entry.report.conflicting()) return out;  // fixed stays empty
  Tuple fixed = row;
  for (const std::pair<AttrId, Value>& cell : entry.changed) {
    fixed.Set(cell.first, cell.second);
  }
  out.fixed = std::move(fixed);
  return out;
}

void RepairMemo::EraseEntry(uint32_t slot) {
  Entry& entry = entries_[slot];
  table_.Erase(entry.key.data());
  for (uint64_t h : entry.probes) {
    auto it = probe_to_entries_.find(h);
    if (it == probe_to_entries_.end()) continue;
    std::vector<uint32_t>& slots = it->second;
    slots.erase(std::remove(slots.begin(), slots.end(), slot), slots.end());
    if (slots.empty()) probe_to_entries_.erase(it);
  }
  entry = Entry();
  free_slots_.push_back(slot);
  --live_entries_;
  ++flushed_;
}

void RepairMemo::FlushProbes(const std::vector<uint64_t>& hashes) {
  for (uint64_t h : hashes) {
    auto it = probe_to_entries_.find(h);
    if (it == probe_to_entries_.end()) continue;
    // EraseEntry edits the reverse lists (including this one): work off
    // a copy.
    std::vector<uint32_t> slots = it->second;
    for (uint32_t slot : slots) EraseEntry(slot);
  }
}

void RepairMemo::Clear() {
  table_.Reset(relevant_.size());
  entries_.clear();
  free_slots_.clear();
  probe_to_entries_.clear();
  live_entries_ = 0;
}

}  // namespace certfix
