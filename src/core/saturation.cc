#include "core/saturation.h"

#include <map>

#include "core/exhaustive.h"

namespace certfix {

const std::set<Value>& Saturator::Dom() const {
  if (dom_hint_ != nullptr) return *dom_hint_;
  std::lock_guard<std::mutex> lock(dom_mutex_);
  if (!dom_cache_.has_value()) {
    dom_cache_ = ActiveDomain(*rules_, *dm_);
  }
  return *dom_cache_;
}

std::vector<size_t> Saturator::FirstRoundProbeRules(AttrSet z0) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < rules_->size(); ++i) {
    const EditingRule& rule = rules_->at(i);
    if (z0.Contains(rule.rhs())) continue;
    if (!rule.premise_set().SubsetOf(z0)) continue;
    if (rule.lhs().empty()) continue;  // probes the all-rows summary
    out.push_back(i);
  }
  return out;
}

std::string FixConflict::ToString(const SchemaPtr& schema) const {
  std::string name = schema ? schema->attr_name(attr) : std::to_string(attr);
  return "conflict on " + name + ": '" + value_a.ToString() + "' (rule #" +
         std::to_string(rule_a) + ") vs '" + value_b.ToString() +
         "' (rule #" + std::to_string(rule_b) + ")";
}

SaturationResult Saturator::Run(const Tuple& t, AttrSet z0, int excluded,
                                std::vector<Value>* proposals,
                                PoolBridge* bridge, ProbeLog* probes) const {
  SaturationResult result;
  result.fixed = t;
  result.covered = z0;
  AttrSet z = z0;

  // One proposal per (attr, value); the map detects same-round conflicts.
  // Proposed values are compared by master-pool id — every proposal comes
  // out of the same MasterIndex, so id equality is value equality.
  struct Proposal {
    Value value;
    ValueId id;
    size_t rule_idx;
    size_t master_idx;
  };
  // Ids of values already appended to `proposals` this run (entries the
  // caller passed in up front, if any, are compared by value below).
  const size_t pre_existing = proposals == nullptr ? 0 : proposals->size();
  std::vector<ValueId> proposal_ids;

  bool changed = true;
  while (changed) {
    changed = false;
    std::map<AttrId, std::vector<Proposal>> round;
    for (size_t i = 0; i < rules_->size(); ++i) {
      const EditingRule& rule = rules_->at(i);
      AttrId b = rule.rhs();
      if (z.Contains(b)) continue;
      if (!rule.premise_set().SubsetOf(z)) continue;
      if (!rule.pattern().Matches(result.fixed)) continue;
      // The single master-data read of the whole engine. Recording the
      // probe even when the answer is empty matters: a later master insert
      // creating this key must invalidate the tuple.
      if (probes != nullptr) {
        probes->Add(ProbeKeyHash(i, result.fixed, rule.lhs()));
      }
      // Distinct proposed values only: a key matched by many master rows
      // with the same Bm value yields a single (equivalent) proposal.
      for (const MasterIndex::RhsValue& rv :
           index_->RhsValues(i, result.fixed, bridge)) {
        round[b].push_back(Proposal{rv.value, rv.id, i, rv.row});
      }
    }
    if (excluded >= 0) {
      auto it = round.find(static_cast<AttrId>(excluded));
      if (it != round.end()) {
        if (proposals != nullptr) {
          for (const Proposal& p : it->second) {
            bool seen = false;
            for (ValueId id : proposal_ids) {
              if (id == p.id) {
                seen = true;
                break;
              }
            }
            for (size_t k = 0; !seen && k < pre_existing; ++k) {
              if ((*proposals)[k] == p.value) seen = true;
            }
            if (!seen) {
              proposals->push_back(p.value);
              proposal_ids.push_back(p.id);
            }
          }
        }
        round.erase(it);
      }
    }
    for (const auto& [attr, props] : round) {
      // Same-round conflict check: all proposals must agree.
      const Proposal& first = props.front();
      for (size_t k = 1; k < props.size(); ++k) {
        if (props[k].id != first.id) {
          result.unique = false;
          result.conflicts.push_back(FixConflict{attr, first.value,
                                                 props[k].value,
                                                 first.rule_idx,
                                                 props[k].rule_idx});
        }
      }
      // Apply the first proposal even under conflict so the covered set
      // stays maximal; callers treat `unique == false` as inconsistent.
      result.fixed.Set(attr, first.value);
      z.Add(attr);
      result.covered.Add(attr);
      result.steps.push_back(
          FixMove{first.rule_idx, first.master_idx, attr, first.value});
      changed = true;
    }
  }
  return result;
}

SaturationResult Saturator::Saturate(const Tuple& t, AttrSet z0) const {
  PoolBridge bridge(t.pool().get(), index_->pool().get());
  return Run(t, z0, -1, nullptr, &bridge);
}

SaturationResult Saturator::SaturateExcluding(
    const Tuple& t, AttrSet z0, AttrId excluded,
    std::vector<Value>* proposals) const {
  PoolBridge bridge(t.pool().get(), index_->pool().get());
  return Run(t, z0, static_cast<int>(excluded), proposals, &bridge);
}

SaturationResult Saturator::CheckUniqueFix(const Tuple& t, AttrSet z0,
                                           PoolBridge* bridge,
                                           ProbeLog* probes) const {
  PoolBridge local(t.pool().get(), index_->pool().get());
  if (bridge == nullptr) bridge = &local;
  SaturationResult full = Run(t, z0, -1, nullptr, bridge, probes);
  if (!full.unique) return full;
  // Cross-round conflicts: for each attribute B that some move validated,
  // collect every value proposed for B by moves whose premises do not
  // depend on B. Two distinct values means two distinct maximal fixes.
  AttrSet targets = full.covered.Minus(z0);
  for (AttrId b : targets.ToVector()) {
    std::vector<Value> proposals;
    SaturationResult excl =
        Run(t, z0, static_cast<int>(b), &proposals, bridge, probes);
    if (!excl.unique) {
      // Conflict on another attribute surfaced under this order; report.
      full.unique = false;
      full.conflicts.insert(full.conflicts.end(), excl.conflicts.begin(),
                            excl.conflicts.end());
      return full;
    }
    if (proposals.size() > 1) {
      full.unique = false;
      full.conflicts.push_back(
          FixConflict{b, proposals[0], proposals[1], 0, 0});
      return full;
    }
  }
  return full;
}

}  // namespace certfix
