#include "core/saturation.h"

#include <map>

#include "core/exhaustive.h"

namespace certfix {

const std::set<Value>& Saturator::Dom() const {
  if (dom_hint_ != nullptr) return *dom_hint_;
  std::lock_guard<std::mutex> lock(dom_mutex_);
  if (!dom_cache_.has_value()) {
    dom_cache_ = ActiveDomain(*rules_, *dm_);
  }
  return *dom_cache_;
}

std::string FixConflict::ToString(const SchemaPtr& schema) const {
  std::string name = schema ? schema->attr_name(attr) : std::to_string(attr);
  return "conflict on " + name + ": '" + value_a.ToString() + "' (rule #" +
         std::to_string(rule_a) + ") vs '" + value_b.ToString() +
         "' (rule #" + std::to_string(rule_b) + ")";
}

SaturationResult Saturator::Run(const Tuple& t, AttrSet z0, int excluded,
                                std::vector<Value>* proposals) const {
  SaturationResult result;
  result.fixed = t;
  result.covered = z0;
  AttrSet z = z0;

  // One proposal per (attr, value); the map detects same-round conflicts.
  struct Proposal {
    Value value;
    size_t rule_idx;
    size_t master_idx;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    std::map<AttrId, std::vector<Proposal>> round;
    for (size_t i = 0; i < rules_->size(); ++i) {
      const EditingRule& rule = rules_->at(i);
      AttrId b = rule.rhs();
      if (z.Contains(b)) continue;
      if (!rule.premise_set().SubsetOf(z)) continue;
      if (!rule.pattern().Matches(result.fixed)) continue;
      // Distinct proposed values only: a key matched by many master rows
      // with the same Bm value yields a single (equivalent) proposal.
      for (const auto& [value, rep] : index_->RhsValues(i, result.fixed)) {
        round[b].push_back(Proposal{value, i, rep});
      }
    }
    if (excluded >= 0) {
      auto it = round.find(static_cast<AttrId>(excluded));
      if (it != round.end()) {
        if (proposals != nullptr) {
          for (const Proposal& p : it->second) {
            bool seen = false;
            for (const Value& v : *proposals) {
              if (v == p.value) {
                seen = true;
                break;
              }
            }
            if (!seen) proposals->push_back(p.value);
          }
        }
        round.erase(it);
      }
    }
    for (const auto& [attr, props] : round) {
      // Same-round conflict check: all proposals must agree.
      const Proposal& first = props.front();
      for (size_t k = 1; k < props.size(); ++k) {
        if (props[k].value != first.value) {
          result.unique = false;
          result.conflicts.push_back(FixConflict{attr, first.value,
                                                 props[k].value,
                                                 first.rule_idx,
                                                 props[k].rule_idx});
        }
      }
      // Apply the first proposal even under conflict so the covered set
      // stays maximal; callers treat `unique == false` as inconsistent.
      result.fixed.Set(attr, first.value);
      z.Add(attr);
      result.covered.Add(attr);
      result.steps.push_back(
          FixMove{first.rule_idx, first.master_idx, attr, first.value});
      changed = true;
    }
  }
  return result;
}

SaturationResult Saturator::Saturate(const Tuple& t, AttrSet z0) const {
  return Run(t, z0, -1, nullptr);
}

SaturationResult Saturator::SaturateExcluding(
    const Tuple& t, AttrSet z0, AttrId excluded,
    std::vector<Value>* proposals) const {
  return Run(t, z0, static_cast<int>(excluded), proposals);
}

SaturationResult Saturator::CheckUniqueFix(const Tuple& t, AttrSet z0) const {
  SaturationResult full = Run(t, z0, -1, nullptr);
  if (!full.unique) return full;
  // Cross-round conflicts: for each attribute B that some move validated,
  // collect every value proposed for B by moves whose premises do not
  // depend on B. Two distinct values means two distinct maximal fixes.
  AttrSet targets = full.covered.Minus(z0);
  for (AttrId b : targets.ToVector()) {
    std::vector<Value> proposals;
    SaturationResult excl = Run(t, z0, static_cast<int>(b), &proposals);
    if (!excl.unique) {
      // Conflict on another attribute surfaced under this order; report.
      full.unique = false;
      full.conflicts.insert(full.conflicts.end(), excl.conflicts.begin(),
                            excl.conflicts.end());
      return full;
    }
    if (proposals.size() > 1) {
      full.unique = false;
      full.conflicts.push_back(
          FixConflict{b, proposals[0], proposals[1], 0, 0});
      return full;
    }
  }
  return full;
}

}  // namespace certfix
