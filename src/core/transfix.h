/// \file transfix.h
/// \brief Procedure TransFix (Fig. 5): applies rules to a tuple whose
/// validated set is Z', extending Z' with every newly corrected attribute.

#ifndef CERTFIX_CORE_TRANSFIX_H_
#define CERTFIX_CORE_TRANSFIX_H_

#include "core/dependency_graph.h"
#include "core/fix_state.h"
#include "core/master_index.h"

namespace certfix {

/// \brief Result of one TransFix run.
struct TransFixResult {
  Tuple tuple;                 ///< the (partially) fixed tuple
  AttrSet validated;           ///< extended Z'
  std::vector<FixMove> steps;  ///< applied moves, in application order
  /// Attributes whose candidate master values disagreed; left untouched.
  AttrSet skipped_conflicts;
};

/// \brief TransFix engine bound to (Sigma, Dm, dependency graph, indexes).
///
/// Follows Fig. 5: rules whose premises are validated sit in `vset`; after
/// a rule fires, its dependency-graph successors are promoted from `uset`
/// when their premises become validated. Each rule is consumed at most
/// once, so the loop runs at most |Sigma| iterations (Sect. 5.1's
/// complexity analysis).
class TransFix {
 public:
  TransFix(const RuleSet& rules, const Relation& dm,
           const DependencyGraph& graph, const MasterIndex& index)
      : rules_(&rules), dm_(&dm), graph_(&graph), index_(&index) {}

  /// Runs TransFix(t, Dm, Sigma, Z'): fixes what the rules and master data
  /// entail from the validated attributes z.
  TransFixResult Run(const Tuple& t, AttrSet z) const;

 private:
  const RuleSet* rules_;
  const Relation* dm_;
  const DependencyGraph* graph_;
  const MasterIndex* index_;
};

}  // namespace certfix

#endif  // CERTFIX_CORE_TRANSFIX_H_
