#include "tools/cli.h"

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>

#include "analysis/analyzer.h"
#include "core/batch_repair.h"
#include "core/dependency_graph.h"
#include "core/zproblems.h"
#include "core/cregion.h"
#include "incremental/delta_repair.h"
#include "incremental/durable_session.h"
#include "storage/wal.h"
#include "mining/rule_miner.h"
#include "relational/csv.h"
#include "relational/csv_stream.h"
#include "rules/rule_parser.h"
#include "stream/delta_source.h"
#include "stream/stream_repair.h"
#include "telemetry/clock.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/string_util.h"
#include "workload/scenario.h"

namespace certfix {

namespace {

struct ParsedArgs {
  std::string command;
  std::map<std::string, std::string> flags;
  std::vector<std::string> errors;
};

ParsedArgs ParseArgs(const std::vector<std::string>& args) {
  ParsedArgs out;
  if (args.empty()) {
    out.errors.push_back("missing subcommand");
    return out;
  }
  out.command = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (!StartsWith(a, "--")) {
      out.errors.push_back("unexpected positional argument: " + a);
      continue;
    }
    std::string key = a.substr(2);
    if (key == "no-conditional" || key == "json" || key == "strict" ||
        key == "no-memo" || key == "metrics-deterministic" ||
        key == "no-telemetry" || key == "no-compress" || key == "no-sync") {
      out.flags[key] = "true";
      continue;
    }
    if (i + 1 >= args.size()) {
      out.errors.push_back("flag --" + key + " needs a value");
      continue;
    }
    out.flags[key] = args[++i];
  }
  return out;
}

void Usage(std::ostream& err) {
  err << "usage: certfix "
         "<mine|analyze|check|repair|repair-stream|repair-deltas|"
         "snapshot|recover|workload gen> [flags]\n"
      << "  mine    --master M.csv [--max-lhs N] [--no-conditional]\n"
      << "  analyze --master M.csv --rules R.rules [--trusted a,b]\n"
      << "          [--json] [--strict] [--max-probes N]\n"
      << "  check   --master M.csv --rules R.rules --region a,b,c\n"
      << "  repair  --master M.csv --rules R.rules --input D.csv\n"
      << "          --trusted a,b [--output OUT.csv] [--threads N]\n"
      << "          [--chunk-size N] [--analyze off|warn|strict]\n"
      << "          [--index flat|map] [--no-memo] [telemetry flags]\n"
      << "  repair-stream\n"
      << "          --master M.csv --rules R.rules --input D.csv\n"
      << "          --trusted a,b [--output OUT.csv] [--threads N]\n"
      << "          [--queue-capacity N] [--analyze off|warn|strict]\n"
      << "          [--index flat|map] [--no-memo] [telemetry flags]\n"
      << "  repair-deltas\n"
      << "          --master M.csv --rules R.rules --input D.csv\n"
      << "          --deltas D.deltas --trusted a,b [--output OUT.csv]\n"
      << "          [--threads N] [--queue-capacity N]\n"
      << "          [--analyze off|warn|strict]\n"
      << "          [--index flat|map] [--no-memo] [telemetry flags]\n"
      << "          [--wal DIR] [--snapshot-every N] [--no-compress]\n"
      << "          [--no-sync] [--mmap-budget BYTES]\n"
      << "          (--wal persists state durably; with an existing DIR\n"
      << "           the session is recovered and --master/--rules/\n"
      << "           --input/--trusted are read from it; --deltas is\n"
      << "           then optional. --deltas accepts the CSV delta-log\n"
      << "           or binary WAL format.)\n"
      << "  snapshot --dir DIR [--no-compress] [--mmap-budget BYTES]\n"
      << "          (rotates a durable session to a fresh snapshot\n"
      << "           generation, emptying its WAL)\n"
      << "  recover --dir DIR [--output OUT.csv] [--threads N]\n"
      << "          [--queue-capacity N] [--index flat|map] [--no-memo]\n"
      << "          [--mmap-budget BYTES] [telemetry flags]\n"
      << "          (snapshot load + WAL replay; prints what recovery\n"
      << "           found and optionally writes the repaired relation)\n"
      << "  workload gen\n"
      << "          --spec S.toml --out-dir DIR [--prefix NAME]\n"
      << "          (writes NAME_master.csv, NAME_initial.csv,\n"
      << "           NAME.deltas, NAME.rules)\n"
      << "telemetry flags (repair commands):\n"
      << "  --metrics-json PATH       write a metrics-registry snapshot\n"
      << "  --trace-out PATH          write a Chrome/Perfetto trace\n"
      << "  --metrics-deterministic   zero all timings (golden-pinnable)\n"
      << "  --no-telemetry            skip clock reads on hot paths\n";
}

Result<Relation> LoadMaster(const ParsedArgs& args) {
  auto it = args.flags.find("master");
  if (it == args.flags.end()) {
    return Status::InvalidArgument("--master is required");
  }
  return ReadCsvFileInferSchema("Master", it->second);
}

Result<RuleSet> LoadRules(const ParsedArgs& args, const SchemaPtr& schema) {
  auto it = args.flags.find("rules");
  if (it == args.flags.end()) {
    return Status::InvalidArgument("--rules is required");
  }
  std::ifstream in(it->second);
  if (!in) return Status::NotFound("cannot open rules file: " + it->second);
  std::stringstream buf;
  buf << in.rdbuf();
  return ParseRules(buf.str(), schema, schema);
}

Result<std::vector<AttrId>> ResolveList(const SchemaPtr& schema,
                                        const std::string& csv) {
  std::vector<std::string> names;
  for (const std::string& part : Split(csv, ',')) {
    std::string t(Trim(part));
    if (!t.empty()) names.push_back(t);
  }
  if (names.empty()) {
    return Status::InvalidArgument("empty attribute list");
  }
  return schema->Resolve(names);
}

int CmdMine(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  Result<Relation> master = LoadMaster(args);
  if (!master.ok()) {
    err << master.status() << "\n";
    return 2;
  }
  RuleMinerOptions options;
  auto it = args.flags.find("max-lhs");
  if (it != args.flags.end()) {
    options.max_lhs = std::strtoul(it->second.c_str(), nullptr, 10);
  }
  if (args.flags.count("no-conditional") > 0) {
    options.mine_conditional = false;
  }
  RuleMiner miner(*master, options);
  Result<RuleSet> rules =
      miner.MineRules(master->schema(), master->schema());
  if (!rules.ok()) {
    err << rules.status() << "\n";
    return 2;
  }
  out << "# " << rules->size() << " rules mined from "
      << master->size() << " master rows\n";
  for (const EditingRule& rule : *rules) out << RuleToDsl(rule) << "\n";
  return 0;
}

/// Parses an optional non-negative integer flag. 0 is a meaningful value
/// for every size knob (all hardware threads / even split), so a typo
/// must not silently parse to it.
bool ParseSizeFlag(const ParsedArgs& args, const char* flag, size_t* out,
                   std::ostream& err) {
  auto it = args.flags.find(flag);
  if (it == args.flags.end()) return true;
  const std::string& s = it->second;
  if (!ParseSizeStrict(s, out)) {
    err << "--" << flag << " needs a non-negative integer, got '" << s
        << "'\n";
    return false;
  }
  return true;
}

/// Parses the optional --index flat|map flag shared by the repair
/// commands: the master-index implementation. flat (default) is the
/// cache-conscious open-addressing table; map keeps the legacy
/// std::unordered_map path alive as its A/B oracle.
bool ParseIndexFlag(const ParsedArgs& args, IndexKind* kind,
                    std::ostream& err) {
  auto it = args.flags.find("index");
  if (it == args.flags.end()) return true;
  if (it->second == "flat") {
    *kind = IndexKind::kFlat;
    return true;
  }
  if (it->second == "map") {
    *kind = IndexKind::kMap;
    return true;
  }
  err << "--index must be flat or map, got '" << it->second << "'\n";
  return false;
}

/// Parses the optional --analyze off|warn|strict flag shared by the
/// repair commands.
bool ParseAnalyzeFlag(const ParsedArgs& args, AnalyzeMode* mode,
                      std::ostream& err) {
  auto it = args.flags.find("analyze");
  if (it == args.flags.end()) return true;
  Result<AnalyzeMode> parsed = ParseAnalyzeMode(it->second);
  if (!parsed.ok()) {
    err << parsed.status() << "\n";
    return false;
  }
  *mode = *parsed;
  return true;
}

int CmdAnalyze(const ParsedArgs& args, std::ostream& out,
               std::ostream& err) {
  const bool json = args.flags.count("json") > 0;
  const bool strict = args.flags.count("strict") > 0;
  Result<Relation> master = LoadMaster(args);
  if (!master.ok()) {
    err << master.status() << "\n";
    return 2;
  }
  Result<RuleSet> rules = LoadRules(args, master->schema());
  if (!rules.ok()) {
    // An unreadable file stays a plain error; a ruleset that *parsed
    // wrong* becomes a diagnostic so --json consumers see one format.
    if (rules.status().code() == StatusCode::kNotFound &&
        rules.status().message().rfind("cannot open", 0) == 0) {
      err << rules.status() << "\n";
      return 2;
    }
    RulesetReport report;
    Diagnostic d;
    // ParseRules rewraps every failure as kParseError with a "line N:"
    // prefix, so the unknown-attribute case is recognized by the
    // Schema::Resolve message it carries.
    d.kind = rules.status().code() == StatusCode::kNotFound ||
                     rules.status().message().find("has no attribute") !=
                         std::string::npos
                 ? DiagnosticKind::kUnknownAttribute
                 : DiagnosticKind::kParseError;
    d.severity = DiagnosticSeverity::kError;
    d.message = rules.status().message();
    report.diagnostics.push_back(std::move(d));
    if (json) {
      out << report.ToJson();
    } else {
      out << report.ToText();
    }
    return 2;
  }

  AttrSet trusted = RulesetAnalyzer::DefaultTrusted(*rules);
  if (auto it = args.flags.find("trusted"); it != args.flags.end()) {
    Result<std::vector<AttrId>> z = ResolveList(master->schema(), it->second);
    if (!z.ok()) {
      err << z.status() << "\n";
      return 2;
    }
    trusted = AttrSet::FromVector(*z);
  }
  AnalyzeOptions options;
  if (!ParseSizeFlag(args, "max-probes", &options.max_probes, err)) {
    return 1;
  }

  RulesetAnalyzer analyzer(*rules, master->schema());
  RulesetReport report = analyzer.Analyze(&*master, trusted, options);
  if (json) {
    out << report.ToJson();
    return strict && !report.ok() ? 2 : 0;
  }

  MasterIndex index(*rules, *master);
  Saturator sat(*rules, *master, index);
  RegionFinder finder(sat);
  DependencyGraph graph(*rules);

  out << "rules: " << rules->size() << ", master rows: " << master->size()
      << "\n";
  out << "dependency graph " << (graph.HasCycle() ? "(cyclic)" : "(acyclic)")
      << ":\n"
      << graph.ToDot();
  ZProblems z(sat);
  out << "attributes only the user can certify:";
  for (AttrId a : z.ForcedAttrs().ToVector()) {
    out << " " << master->schema()->attr_name(a);
  }
  out << "\nCompCRegion Z:";
  for (AttrId a : finder.CompCRegionZ()) {
    out << " " << master->schema()->attr_name(a);
  }
  out << "\nGRegion Z    :";
  for (AttrId a : finder.GRegionZ()) {
    out << " " << master->schema()->attr_name(a);
  }
  out << "\n\n" << report.ToText();
  return strict && !report.ok() ? 2 : 0;
}

int CmdCheck(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  Result<Relation> master = LoadMaster(args);
  if (!master.ok()) {
    err << master.status() << "\n";
    return 2;
  }
  Result<RuleSet> rules = LoadRules(args, master->schema());
  if (!rules.ok()) {
    err << rules.status() << "\n";
    return 2;
  }
  auto it = args.flags.find("region");
  if (it == args.flags.end()) {
    err << "--region is required\n";
    return 1;
  }
  Result<std::vector<AttrId>> z = ResolveList(master->schema(), it->second);
  if (!z.ok()) {
    err << z.status() << "\n";
    return 2;
  }
  MasterIndex index(*rules, *master);
  Saturator sat(*rules, *master, index);
  RegionFinder finder(sat);
  double coverage = 0.0;
  CRegionOptions options;
  Region region = finder.BuildRegion(*z, options, &coverage);
  out << "region Z = {" << it->second << "}: " << region.tableau().size()
      << " validated pattern rows; " << static_cast<int>(coverage * 100)
      << "% of sampled master tuples admit a certain fix\n";
  if (region.tableau().empty()) {
    out << "NOT a usable certain region (no pattern row validates)\n";
    return 2;
  }
  out << "certain region: yes (for the validated rows)\n";
  return 0;
}

/// Per-command telemetry scope shared by the repair commands. Gives the
/// command a fresh registry (RunCli is called many times in-process by
/// tests; counters must not bleed across commands), applies
/// --metrics-deterministic / --no-telemetry, and turns the tracer on
/// when --trace-out asks for a trace. Member order matters: the
/// registry is declared first so it is destroyed last, after every
/// engine that recorded into it.
struct TelemetryScope {
  explicit TelemetryScope(const ParsedArgs& args)
      : fake_clock(args.flags.count("metrics-deterministic") > 0),
        enabled(args.flags.count("no-telemetry") == 0) {
    if (args.flags.count("trace-out") > 0) {
      telemetry::Tracer::Global().Enable();
    }
  }
  ~TelemetryScope() { telemetry::Tracer::Global().Disable(); }
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  telemetry::ScopedRegistry registry;
  telemetry::ScopedFakeClock fake_clock;
  telemetry::ScopedEnabled enabled;
};

/// Writes --metrics-json and --trace-out files if requested. Called on
/// every command exit path that ran the engine (a conflict exit still
/// has metrics worth keeping). Returns 0, or 2 on a write failure.
int DumpTelemetry(const ParsedArgs& args, std::ostream& err) {
  if (auto it = args.flags.find("metrics-json"); it != args.flags.end()) {
    std::ofstream out(it->second);
    if (!out) {
      err << Status::InvalidArgument("cannot open for write: " + it->second)
          << "\n";
      return 2;
    }
    out << telemetry::Registry::Global()->ToJson();
  }
  if (auto it = args.flags.find("trace-out"); it != args.flags.end()) {
    std::ofstream out(it->second);
    if (!out) {
      err << Status::InvalidArgument("cannot open for write: " + it->second)
          << "\n";
      return 2;
    }
    out << telemetry::Tracer::Global().ExportJson();
  }
  return 0;
}

/// Setup both repair commands share: master data, rules, the input
/// path, and the resolved trusted attribute set.
struct RepairSetup {
  Relation master;
  RuleSet rules;
  std::string input_path;
  AttrSet trusted;
};

/// Loads the common repair inputs (--master, --rules, --input,
/// --trusted). Returns 0 on success, else the command's exit code
/// (after printing to `err`).
int LoadRepairSetup(const ParsedArgs& args, std::ostream& err,
                    RepairSetup* setup) {
  Result<Relation> master = LoadMaster(args);
  if (!master.ok()) {
    err << master.status() << "\n";
    return 2;
  }
  Result<RuleSet> rules = LoadRules(args, master->schema());
  if (!rules.ok()) {
    err << rules.status() << "\n";
    return 2;
  }
  auto input_it = args.flags.find("input");
  auto trusted_it = args.flags.find("trusted");
  if (input_it == args.flags.end() || trusted_it == args.flags.end()) {
    err << "--input and --trusted are required\n";
    return 1;
  }
  Result<std::vector<AttrId>> trusted =
      ResolveList(master->schema(), trusted_it->second);
  if (!trusted.ok()) {
    err << trusted.status() << "\n";
    return 2;
  }
  setup->master = std::move(master).ValueOrDie();
  setup->rules = std::move(rules).ValueOrDie();
  setup->input_path = input_it->second;
  setup->trusted = AttrSet::FromVector(*trusted);
  return 0;
}

int CmdRepair(const ParsedArgs& args, std::ostream& out,
              std::ostream& err) {
  TelemetryScope telemetry_scope(args);
  RepairSetup setup;
  if (int code = LoadRepairSetup(args, err, &setup); code != 0) {
    return code;
  }
  Result<Relation> input = [&] {
    CERTFIX_SPAN("batch.ingest");
    return ReadCsvFile(setup.master.schema(), setup.input_path);
  }();
  if (!input.ok()) {
    err << input.status() << "\n";
    return 2;
  }
  RepairOptions options;
  IndexKind index_kind = IndexKind::kFlat;
  if (!ParseSizeFlag(args, "threads", &options.num_threads, err) ||
      !ParseSizeFlag(args, "chunk-size", &options.chunk_size, err) ||
      !ParseAnalyzeFlag(args, &options.analyze_first, err) ||
      !ParseIndexFlag(args, &index_kind, err)) {
    return 1;
  }
  options.use_memo = args.flags.count("no-memo") == 0;
  MasterIndex index(setup.rules, setup.master, index_kind);
  Saturator sat(setup.rules, setup.master, index);
  BatchRepair repair(sat, options);
  Result<BatchRepairResult> checked =
      repair.RepairChecked(*input, setup.trusted);
  if (!checked.ok()) {
    err << checked.status() << "\n";
    return 2;
  }
  BatchRepairResult result = std::move(checked).ValueOrDie();
  out << "rows: " << input->size()
      << "  fully covered: " << result.tuples_fully_covered
      << "  partial: " << result.tuples_partial
      << "  untouched: " << result.tuples_untouched
      << "  conflicts: " << result.tuples_conflicting
      << "  cells changed: " << result.cells_changed << "\n";
  out << "memo hits: " << result.memo_hits
      << "  memo misses: " << result.memo_misses << "\n";
  auto output_it = args.flags.find("output");
  if (output_it != args.flags.end()) {
    CERTFIX_SPAN("batch.sink");
    Status st = WriteCsvFile(result.repaired, output_it->second);
    if (!st.ok()) {
      err << st << "\n";
      return 2;
    }
    out << "repaired relation written to " << output_it->second << "\n";
  }
  if (int code = DumpTelemetry(args, err); code != 0) return code;
  return result.tuples_conflicting == 0 ? 0 : 2;
}

int CmdRepairStream(const ParsedArgs& args, std::ostream& out,
                    std::ostream& err) {
  TelemetryScope telemetry_scope(args);
  RepairSetup setup;
  if (int code = LoadRepairSetup(args, err, &setup); code != 0) {
    return code;
  }
  StreamOptions options;
  IndexKind index_kind = IndexKind::kFlat;
  if (!ParseSizeFlag(args, "threads", &options.num_shards, err) ||
      !ParseSizeFlag(args, "queue-capacity", &options.queue_capacity, err) ||
      !ParseAnalyzeFlag(args, &options.analyze_first, err) ||
      !ParseIndexFlag(args, &index_kind, err)) {
    return 1;
  }
  options.use_memo = args.flags.count("no-memo") == 0;
  std::ifstream in(setup.input_path);
  if (!in) {
    err << Status::NotFound("cannot open file: " + setup.input_path) << "\n";
    return 2;
  }

  MasterIndex index(setup.rules, setup.master, index_kind);
  Saturator sat(setup.rules, setup.master, index);
  CsvTupleSource source(setup.master.schema(), in);

  std::ofstream file_out;
  std::unique_ptr<StreamSink> sink;
  auto output_it = args.flags.find("output");
  if (output_it != args.flags.end()) {
    file_out.open(output_it->second);
    if (!file_out) {
      err << Status::InvalidArgument("cannot open for write: " +
                                     output_it->second)
          << "\n";
      return 2;
    }
    sink = std::make_unique<CsvStreamSink>(setup.master.schema(), file_out);
  } else {
    sink = std::make_unique<NullSink>();
  }

  StreamRepairEngine engine(sat, setup.trusted, sink.get(), options);
  if (!engine.precheck_status().ok()) {
    err << engine.precheck_status() << "\n";
    return 2;
  }
  std::vector<std::string> fields;
  for (;;) {
    Result<bool> got = source.Next(&fields);
    if (!got.ok()) {
      err << got.status() << "\n";
      return 2;
    }
    if (!*got) break;
    Status st = engine.PushStrings(fields);
    if (!st.ok()) {
      err << st << "\n";
      // A refused push usually means a shard worker died; Finish()
      // rethrows its exception — surface the root cause, not just the
      // generic push error.
      try {
        engine.Finish();
      } catch (const std::exception& e) {
        err << "stream worker failed: " << e.what() << "\n";
      }
      return 2;
    }
  }
  StreamSnapshot s;
  try {
    s = engine.Finish();
  } catch (const std::exception& e) {
    err << "stream worker failed: " << e.what() << "\n";
    return 2;
  }
  out << "rows: " << s.tuples_out
      << "  fully covered: " << s.fully_covered
      << "  partial: " << s.partial
      << "  untouched: " << s.untouched
      << "  conflicts: " << s.conflicting
      << "  cells changed: " << s.cells_changed << "\n";
  out << "shards: " << engine.num_shards()
      << "  backpressure waits: " << s.backpressure_waits
      << "  pool recycles: " << s.pool_recycles
      << "  memo hits: " << s.memo_hits
      << "  memo misses: " << s.memo_misses << "\n";
  if (output_it != args.flags.end()) {
    out << "repaired relation written to " << output_it->second << "\n";
  }
  if (int code = DumpTelemetry(args, err); code != 0) return code;
  return s.conflicting == 0 ? 0 : 2;
}

int CmdRepairDeltas(const ParsedArgs& args, std::ostream& out,
                    std::ostream& err) {
  TelemetryScope telemetry_scope(args);
  DeltaRepairOptions options;
  if (!ParseSizeFlag(args, "threads", &options.num_shards, err) ||
      !ParseSizeFlag(args, "queue-capacity", &options.queue_capacity, err) ||
      !ParseAnalyzeFlag(args, &options.analyze_first, err) ||
      !ParseIndexFlag(args, &options.index_kind, err)) {
    return 1;
  }
  options.use_memo = args.flags.count("no-memo") == 0;

  auto wal_it = args.flags.find("wal");
  auto deltas_it = args.flags.find("deltas");
  if (deltas_it == args.flags.end() && wal_it == args.flags.end()) {
    err << "--deltas is required (unless recovering via --wal)\n";
    return 1;
  }
  DurableOptions durable;
  durable.engine = options;
  if (!ParseSizeFlag(args, "snapshot-every", &durable.snapshot_every, err) ||
      !ParseSizeFlag(args, "mmap-budget", &durable.mmap_budget_bytes, err)) {
    return 1;
  }
  durable.compress_snapshots = args.flags.count("no-compress") == 0;
  durable.sync_every_append = args.flags.count("no-sync") == 0;

  // Lifetime note: a plain (non-durable) engine borrows setup.rules, so
  // setup must outlive it.
  RepairSetup setup;
  std::unique_ptr<DurableSession> session;
  std::unique_ptr<DeltaRepairEngine> owned_engine;
  DeltaRepairStats stats;
  try {
    if (wal_it != args.flags.end() &&
        DurableSession::Exists(wal_it->second)) {
      Result<std::unique_ptr<DurableSession>> opened =
          DurableSession::Open(wal_it->second, durable);
      if (!opened.ok()) {
        err << opened.status() << "\n";
        return 2;
      }
      session = std::move(opened).ValueOrDie();
      const RecoveryInfo& rec = session->recovery();
      out << "recovered " << wal_it->second << ": snapshot "
          << rec.snapshot_id << "  replayed: " << rec.replayed_records
          << "  discarded bytes: " << rec.discarded_bytes
          << "  mapped columns: " << rec.mapped_columns << "\n";
    } else {
      if (int code = LoadRepairSetup(args, err, &setup); code != 0) {
        return code;
      }
      Result<Relation> input =
          ReadCsvFile(setup.master.schema(), setup.input_path);
      if (!input.ok()) {
        err << input.status() << "\n";
        return 2;
      }
      if (wal_it != args.flags.end()) {
        Result<std::unique_ptr<DurableSession>> created =
            DurableSession::Create(wal_it->second, setup.rules, setup.master,
                                   *input, setup.trusted, durable);
        if (!created.ok()) {
          err << created.status() << "\n";
          return 2;
        }
        session = std::move(created).ValueOrDie();
      } else {
        owned_engine = std::make_unique<DeltaRepairEngine>(
            setup.rules, setup.master, setup.trusted, options);
        if (!owned_engine->precheck_status().ok()) {
          err << owned_engine->precheck_status() << "\n";
          return 2;
        }
        if (Status st = owned_engine->Load(*input); !st.ok()) {
          err << st << "\n";
          return 2;
        }
      }
    }
    DeltaRepairEngine& engine =
        session != nullptr ? session->engine() : *owned_engine;
    if (!engine.precheck_status().ok()) {
      err << engine.precheck_status() << "\n";
      return 2;
    }
    if (deltas_it != args.flags.end()) {
      const RuleSet& rules = session != nullptr ? session->rules()
                                                : setup.rules;
      Result<std::unique_ptr<DeltaSource>> source = storage::OpenDeltaLog(
          rules.r_schema(), rules.rm_schema(), deltas_it->second);
      if (!source.ok()) {
        err << source.status() << "\n";
        return 2;
      }
      Status st = session != nullptr ? session->ApplyAll(source->get())
                                     : engine.ApplyAll(source->get());
      if (!st.ok()) {
        err << st << "\n";
        return 2;
      }
    }
    stats = engine.stats();
  } catch (const std::exception& e) {
    err << "delta engine worker failed: " << e.what() << "\n";
    return 2;
  }
  DeltaRepairEngine& engine =
      session != nullptr ? session->engine() : *owned_engine;
  if (session != nullptr) {
    out << "wal: " << session->dir() << "  snapshot: "
        << session->snapshot_id() << "  pending deltas: "
        << session->records_since_snapshot() << "\n";
  }
  out << "rows: " << stats.rows
      << "  fully covered: " << stats.fully_covered
      << "  partial: " << stats.partial
      << "  untouched: " << stats.untouched
      << "  conflicts: " << stats.conflicting
      << "  cells changed: " << stats.cells_changed << "\n";
  out << "deltas: " << stats.deltas_applied
      << "  repairs: " << stats.tuples_repaired
      << "  invalidated: " << stats.tuples_invalidated
      << "  rebuilds: " << stats.master_rebuilds
      << "  no-op updates: " << stats.noop_updates
      << "  shards: " << engine.num_shards()
      << "  memo hits: " << stats.memo_hits
      << "  memo misses: " << stats.memo_misses << "\n";
  auto output_it = args.flags.find("output");
  if (output_it != args.flags.end()) {
    Status st = WriteCsvFile(engine.SnapshotRepaired(), output_it->second);
    if (!st.ok()) {
      err << st << "\n";
      return 2;
    }
    out << "repaired relation written to " << output_it->second << "\n";
  }
  if (int code = DumpTelemetry(args, err); code != 0) return code;
  return stats.conflicting == 0 ? 0 : 2;
}

int CmdSnapshot(const ParsedArgs& args, std::ostream& out,
                std::ostream& err) {
  auto dir_it = args.flags.find("dir");
  if (dir_it == args.flags.end()) {
    err << "--dir is required\n";
    return 1;
  }
  DurableOptions durable;
  if (!ParseSizeFlag(args, "threads", &durable.engine.num_shards, err) ||
      !ParseSizeFlag(args, "mmap-budget", &durable.mmap_budget_bytes, err)) {
    return 1;
  }
  durable.compress_snapshots = args.flags.count("no-compress") == 0;
  try {
    Result<std::unique_ptr<DurableSession>> opened =
        DurableSession::Open(dir_it->second, durable);
    if (!opened.ok()) {
      err << opened.status() << "\n";
      return 2;
    }
    std::unique_ptr<DurableSession> session = std::move(opened).ValueOrDie();
    if (Status st = session->WriteSnapshot(); !st.ok()) {
      err << st << "\n";
      return 2;
    }
    out << "snapshot generation " << session->snapshot_id()
        << " committed in " << dir_it->second << "\n";
  } catch (const std::exception& e) {
    err << "delta engine worker failed: " << e.what() << "\n";
    return 2;
  }
  return 0;
}

int CmdRecover(const ParsedArgs& args, std::ostream& out,
               std::ostream& err) {
  TelemetryScope telemetry_scope(args);
  auto dir_it = args.flags.find("dir");
  if (dir_it == args.flags.end()) {
    err << "--dir is required\n";
    return 1;
  }
  DurableOptions durable;
  if (!ParseSizeFlag(args, "threads", &durable.engine.num_shards, err) ||
      !ParseSizeFlag(args, "queue-capacity", &durable.engine.queue_capacity,
                     err) ||
      !ParseIndexFlag(args, &durable.engine.index_kind, err) ||
      !ParseSizeFlag(args, "mmap-budget", &durable.mmap_budget_bytes, err)) {
    return 1;
  }
  durable.engine.use_memo = args.flags.count("no-memo") == 0;
  DeltaRepairStats stats;
  std::unique_ptr<DurableSession> session;
  try {
    Result<std::unique_ptr<DurableSession>> opened =
        DurableSession::Open(dir_it->second, durable);
    if (!opened.ok()) {
      err << opened.status() << "\n";
      return 2;
    }
    session = std::move(opened).ValueOrDie();
    stats = session->engine().stats();
  } catch (const std::exception& e) {
    err << "delta engine worker failed: " << e.what() << "\n";
    return 2;
  }
  const RecoveryInfo& rec = session->recovery();
  out << "recovered " << dir_it->second << ": snapshot " << rec.snapshot_id
      << "  replayed: " << rec.replayed_records
      << "  discarded bytes: " << rec.discarded_bytes
      << "  mapped columns: " << rec.mapped_columns << "\n";
  out << "rows: " << stats.rows
      << "  fully covered: " << stats.fully_covered
      << "  partial: " << stats.partial
      << "  untouched: " << stats.untouched
      << "  conflicts: " << stats.conflicting
      << "  cells changed: " << stats.cells_changed << "\n";
  if (auto output_it = args.flags.find("output");
      output_it != args.flags.end()) {
    Status st =
        WriteCsvFile(session->engine().SnapshotRepaired(), output_it->second);
    if (!st.ok()) {
      err << st << "\n";
      return 2;
    }
    out << "repaired relation written to " << output_it->second << "\n";
  }
  if (int code = DumpTelemetry(args, err); code != 0) return code;
  return stats.conflicting == 0 ? 0 : 2;
}

int CmdWorkloadGen(const ParsedArgs& args, std::ostream& out,
                   std::ostream& err) {
  auto spec_it = args.flags.find("spec");
  auto dir_it = args.flags.find("out-dir");
  if (spec_it == args.flags.end() || dir_it == args.flags.end()) {
    err << "--spec and --out-dir are required\n";
    return 1;
  }
  Result<ScenarioSpec> spec = LoadScenarioSpecFile(spec_it->second);
  if (!spec.ok()) {
    err << spec.status() << "\n";
    return 2;
  }
  Result<Scenario> scenario = GenerateScenario(*spec);
  if (!scenario.ok()) {
    err << scenario.status() << "\n";
    return 2;
  }
  std::string prefix = scenario->spec.name;
  if (auto it = args.flags.find("prefix"); it != args.flags.end()) {
    prefix = it->second;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_it->second, ec);
  if (ec) {
    err << "cannot create " << dir_it->second << ": " << ec.message() << "\n";
    return 2;
  }
  std::string base = dir_it->second + "/" + prefix;
  if (Status st = WriteCsvFile(scenario->master, base + "_master.csv");
      !st.ok()) {
    err << st << "\n";
    return 2;
  }
  if (Status st = WriteCsvFile(scenario->initial, base + "_initial.csv");
      !st.ok()) {
    err << st << "\n";
    return 2;
  }
  std::ofstream deltas_out(base + ".deltas", std::ios::binary);
  if (!deltas_out) {
    err << "cannot open for write: " << base << ".deltas\n";
    return 2;
  }
  if (Status st = WriteDeltaLog(scenario->spec.name, scenario->spec.seed,
                                scenario->deltas, deltas_out);
      !st.ok()) {
    err << st << "\n";
    return 2;
  }
  deltas_out.close();
  // The ruleset the scenario was generated against, in the DSL
  // rule_parser.h reads back — so a generated scenario is runnable with
  // the CLI repair commands without hand-writing rules.
  std::ofstream rules_out(base + ".rules");
  if (!rules_out) {
    err << "cannot open for write: " << base << ".rules\n";
    return 2;
  }
  for (const EditingRule& rule : scenario->rules) {
    rules_out << RuleToDsl(rule) << "\n";
  }
  rules_out.close();
  std::string trusted_csv;
  for (const std::string& name : scenario->trusted_names) {
    if (!trusted_csv.empty()) trusted_csv += ",";
    trusted_csv += name;
  }
  out << "scenario: " << scenario->spec.name << "  workload: "
      << scenario->spec.workload << "  seed: " << scenario->spec.seed << "\n";
  out << "master rows: " << scenario->master.size()
      << "  initial rows: " << scenario->initial.size()
      << "  deltas: " << scenario->deltas.size() << "\n";
  out << "trusted: " << trusted_csv << "\n";
  out << "wrote " << base << "_master.csv, " << base << "_initial.csv, "
      << base << ".deltas, " << base << ".rules\n";
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  // `workload` takes a positional subcommand before the flags; fold it
  // into the command name so the flag parser stays positional-free.
  std::vector<std::string> rewritten;
  if (!args.empty() && args[0] == "workload") {
    if (args.size() < 2 || args[1] != "gen") {
      err << "usage: certfix workload gen --spec S.toml --out-dir DIR"
             " [--prefix NAME]\n";
      return 1;
    }
    rewritten.assign(args.begin() + 1, args.end());
    rewritten[0] = "workload-gen";
  }
  ParsedArgs parsed = ParseArgs(rewritten.empty() ? args : rewritten);
  if (!parsed.errors.empty()) {
    for (const std::string& e : parsed.errors) err << "error: " << e << "\n";
    Usage(err);
    return 1;
  }
  if (parsed.command == "mine") return CmdMine(parsed, out, err);
  if (parsed.command == "analyze") return CmdAnalyze(parsed, out, err);
  if (parsed.command == "check") return CmdCheck(parsed, out, err);
  if (parsed.command == "repair") return CmdRepair(parsed, out, err);
  if (parsed.command == "repair-stream") {
    return CmdRepairStream(parsed, out, err);
  }
  if (parsed.command == "repair-deltas") {
    return CmdRepairDeltas(parsed, out, err);
  }
  if (parsed.command == "snapshot") return CmdSnapshot(parsed, out, err);
  if (parsed.command == "recover") return CmdRecover(parsed, out, err);
  if (parsed.command == "workload-gen") {
    return CmdWorkloadGen(parsed, out, err);
  }
  err << "unknown subcommand: " << parsed.command << "\n";
  Usage(err);
  return 1;
}

}  // namespace certfix
