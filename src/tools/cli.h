/// \file cli.h
/// \brief Command-line front end for the library (the `certfix` tool).
///
/// Subcommands (the input schema R is taken to equal the master schema,
/// read from the master CSV header; all attributes are strings):
///
///   certfix mine    --master M.csv [--max-lhs N] [--no-conditional]
///       Mine editing rules from master data; print them in the rule DSL.
///
///   certfix analyze --master M.csv --rules R.rules
///       Print rule diagnostics: dependency graph (dot), forced
///       attributes, CompCRegion vs GRegion attribute lists.
///
///   certfix check   --master M.csv --rules R.rules --region a,b,c
///       Test whether the attribute list admits a certain region
///       (master-anchored tableau construction + certainty checks).
///
///   certfix repair  --master M.csv --rules R.rules --input D.csv
///                   --trusted a,b [--output OUT.csv] [--threads N]
///                   [--chunk-size N]
///       Batch-repair D.csv trusting the listed attributes of every row;
///       write the repaired relation and print statistics. --threads N
///       repairs N row shards in parallel (0 = all hardware threads;
///       output is identical at any thread count); --chunk-size sets the
///       rows per shard.
///
/// The logic is stream-injected for testability; examples/certfix_cli.cpp
/// wraps it in main().

#ifndef CERTFIX_TOOLS_CLI_H_
#define CERTFIX_TOOLS_CLI_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace certfix {

/// Runs the tool; returns a process exit code (0 success, 1 user error,
/// 2 data/analysis failure).
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace certfix

#endif  // CERTFIX_TOOLS_CLI_H_
