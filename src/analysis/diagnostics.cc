#include "analysis/diagnostics.h"

#include <cstdio>

namespace certfix {

namespace {

std::string Indent(int levels) { return std::string(2 * levels, ' '); }

std::string JsonStringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(items[i]) + "\"";
  }
  out += "]";
  return out;
}

}  // namespace

const char* DiagnosticKindName(DiagnosticKind kind) {
  switch (kind) {
    case DiagnosticKind::kUnknownAttribute: return "unknown-attribute";
    case DiagnosticKind::kTypeMismatch: return "type-mismatch";
    case DiagnosticKind::kRuleConflict: return "rule-conflict";
    case DiagnosticKind::kDependencyCycle: return "dependency-cycle";
    case DiagnosticKind::kDeadRule: return "dead-rule";
    case DiagnosticKind::kShadowedRule: return "shadowed-rule";
    case DiagnosticKind::kCoverageGap: return "coverage-gap";
    case DiagnosticKind::kAnalysisBudget: return "analysis-budget";
    case DiagnosticKind::kParseError: return "parse-error";
  }
  return "?";
}

const char* DiagnosticSeverityName(DiagnosticSeverity severity) {
  switch (severity) {
    case DiagnosticSeverity::kError: return "error";
    case DiagnosticSeverity::kWarning: return "warning";
    case DiagnosticSeverity::kNote: return "note";
  }
  return "?";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Diagnostic::ToString() const {
  std::string out = std::string(DiagnosticSeverityName(severity)) + "[" +
                    DiagnosticKindName(kind) + "] " + message;
  return out;
}

std::string Diagnostic::ToJson(int indent) const {
  const std::string in = Indent(indent);
  const std::string field = Indent(indent + 1);
  std::string out = in + "{\n";
  out += field + "\"kind\": \"" + DiagnosticKindName(kind) + "\",\n";
  out += field + "\"severity\": \"" + DiagnosticSeverityName(severity) + "\"";
  if (!rules.empty()) {
    out += ",\n" + field + "\"rules\": " + JsonStringArray(rules);
  }
  if (!attr.empty()) {
    out += ",\n" + field + "\"attr\": \"" + JsonEscape(attr) + "\"";
  }
  if (!witness.empty()) {
    out += ",\n" + field + "\"witness\": \"" + JsonEscape(witness) + "\"";
  }
  out += ",\n" + field + "\"message\": \"" + JsonEscape(message) + "\"\n";
  out += in + "}";
  return out;
}

size_t RulesetReport::errors() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagnosticSeverity::kError) ++n;
  }
  return n;
}

size_t RulesetReport::warnings() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagnosticSeverity::kWarning) ++n;
  }
  return n;
}

const Diagnostic* RulesetReport::FirstError() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagnosticSeverity::kError) return &d;
  }
  return nullptr;
}

std::string RulesetReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"rules\": " + std::to_string(num_rules) + ",\n";
  out += "  \"trusted\": " + JsonStringArray(trusted) + ",\n";
  out += "  \"fixable\": " + JsonStringArray(fixable) + ",\n";
  out += "  \"probes\": " + std::to_string(probes) + ",\n";
  out += "  \"errors\": " + std::to_string(errors()) + ",\n";
  out += "  \"warnings\": " + std::to_string(warnings()) + ",\n";
  out += "  \"summary\": [";
  for (size_t i = 0; i < summary.size(); ++i) {
    const RuleSummaryRow& row = summary[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"rule\": \"" + JsonEscape(row.rule) + "\", \"reachable\": " +
           (row.reachable ? "true" : "false") +
           ", \"fanout\": " + std::to_string(row.fanout) +
           ", \"downstream\": " + std::to_string(row.downstream) + "}";
  }
  out += summary.empty() ? "],\n" : "\n  ],\n";
  out += "  \"diagnostics\": [";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += diagnostics[i].ToJson(2);
  }
  out += diagnostics.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string RulesetReport::ToText() const {
  std::string out = "ruleset analysis: " + std::to_string(num_rules) +
                    " rule(s), trusted Z = {";
  for (size_t i = 0; i < trusted.size(); ++i) {
    if (i > 0) out += ", ";
    out += trusted[i];
  }
  out += "}, fixable = {";
  for (size_t i = 0; i < fixable.size(); ++i) {
    if (i > 0) out += ", ";
    out += fixable[i];
  }
  out += "}\n";
  for (const RuleSummaryRow& row : summary) {
    out += "  rule " + row.rule + ": " +
           (row.reachable ? "reachable" : "unreachable") +
           ", fanout " + std::to_string(row.fanout) + ", downstream " +
           std::to_string(row.downstream) + "\n";
  }
  for (const Diagnostic& d : diagnostics) {
    out += "  " + d.ToString() + "\n";
  }
  out += "result: " + std::to_string(errors()) + " error(s), " +
         std::to_string(warnings()) + " warning(s), " +
         std::to_string(probes) + " probe(s)\n";
  return out;
}

}  // namespace certfix
