/// \file diagnostics.h
/// \brief Typed diagnostics and the RulesetReport emitted by the analyzer.
///
/// The report is the machine-readable contract of `cli analyze --json` and
/// of the engines' analyze_first gate: diagnostic kinds and the JSON field
/// layout are stable, golden-tested surface (tests/golden/analyze/).

#ifndef CERTFIX_ANALYSIS_DIAGNOSTICS_H_
#define CERTFIX_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace certfix {

/// \brief What a diagnostic is about (the analyzer's taxonomy).
enum class DiagnosticKind {
  kUnknownAttribute = 0,  ///< rule references an attribute absent from the
                          ///< provided schema (schema drift / typo)
  kTypeMismatch,          ///< pattern constant incompatible with the
                          ///< attribute's declared type
  kRuleConflict,          ///< two rules propose distinct fixes for one
                          ///< attribute on a witness tuple (Sect. 4.1
                          ///< consistency, fronted by CheckUniqueFix)
  kDependencyCycle,       ///< strongly connected rules in the dependency
                          ///< graph (Sect. 5.1); saturation still
                          ///< terminates, but the rules are mutually
                          ///< enabling and order-sensitive
  kDeadRule,              ///< rule that can never fire from the trusted
                          ///< region (target already trusted, or premise
                          ///< outside the schema-level closure)
  kShadowedRule,          ///< rule subsumed by a syntactically more
                          ///< general rule with the same fix
  kCoverageGap,           ///< attribute no rule chain can ever fix from
                          ///< the trusted region (core/coverage view)
  kAnalysisBudget,        ///< conflict search truncated by the probe
                          ///< budget; absence of conflicts is not proof
  kParseError,            ///< ruleset text failed to parse at all
};

/// \brief How severe a diagnostic is. Errors make a ruleset unusable under
/// analyze_first=strict; warnings and notes never block a session.
enum class DiagnosticSeverity { kError = 0, kWarning = 1, kNote = 2 };

const char* DiagnosticKindName(DiagnosticKind kind);
const char* DiagnosticSeverityName(DiagnosticSeverity severity);

/// \brief One analyzer finding.
struct Diagnostic {
  DiagnosticKind kind = DiagnosticKind::kParseError;
  DiagnosticSeverity severity = DiagnosticSeverity::kError;
  /// Names of the rules involved, primary rule first. May be empty for
  /// ruleset-level findings (coverage gaps, parse errors).
  std::vector<std::string> rules;
  /// The R attribute the finding is about, when attribute-specific.
  std::string attr;
  /// Witness rendering for conflicts: the trusted cells of a concrete
  /// tuple on which two rules disagree (e.g. "zip=EH7, city=Lnd").
  std::string witness;
  /// Human-readable one-liner; for conflicts it embeds the witness so a
  /// strict-gate Status carries it verbatim.
  std::string message;

  /// "error[rule-conflict] message" — the rendering used by logs and by
  /// strict-gate Status messages.
  std::string ToString() const;
  /// One JSON object, two-space indented at `indent` levels.
  std::string ToJson(int indent) const;
};

/// \brief Per-rule reachability / fan-out row surfaced in the report (the
/// RuleSetSummary view; see analysis/rule_summary.h).
struct RuleSummaryRow {
  std::string rule;       ///< rule name
  bool reachable = true;  ///< premise derivable from the trusted region
  size_t fanout = 0;      ///< dependency-graph out-degree
  size_t downstream = 0;  ///< rules transitively enabled by this rule
};

/// \brief Full analyzer output for one (Sigma, Dm, Z) triple.
struct RulesetReport {
  size_t num_rules = 0;
  /// Trusted region Z the analysis ran against (attribute names,
  /// schema order).
  std::vector<std::string> trusted;
  /// Attributes some rule chain can fix from Z (closure minus Z).
  std::vector<std::string> fixable;
  /// Probe tuples checked during the conflict search (0 when the search
  /// was skipped for lack of a master relation).
  size_t probes = 0;
  std::vector<RuleSummaryRow> summary;
  std::vector<Diagnostic> diagnostics;

  size_t errors() const;
  size_t warnings() const;
  /// True when no error-severity diagnostic exists (warnings allowed).
  bool ok() const { return errors() == 0; }
  const Diagnostic* FirstError() const;

  /// Pretty-printed JSON document (stable field order, two-space indent,
  /// trailing newline). The golden-test surface.
  std::string ToJson() const;
  /// Human-readable multi-line report.
  std::string ToText() const;
};

/// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string JsonEscape(const std::string& s);

}  // namespace certfix

#endif  // CERTFIX_ANALYSIS_DIAGNOSTICS_H_
