/// \file analyzer.h
/// \brief Ruleset static analyzer: is (Sigma, Dm, Z) well-formed?
///
/// Fronts the scattered well-formedness machinery — CheckUniqueFix
/// (consistency witnesses), DependencyGraph (cycles, reachability),
/// ZProblems-style closure (dead rules, coverage gaps) — behind one call
/// producing a RulesetReport of typed diagnostics. Three consumers:
/// `cli analyze` (human + --json), the engines' analyze_first gate
/// (GateRuleset below), and tests.
///
/// The conflict search is a sound restriction of the active-domain
/// enumeration in the proof of Theorem 1: a trusted attribute's probe
/// value only ever reaches a rule through t[X] = tm[Xm] key agreement or
/// a pattern-constant comparison, so per attribute it suffices to try the
/// corresponding master-column values, the positive pattern constants,
/// and one fresh constant standing for "everything else". Attributes
/// outside Z (or unmentioned in Sigma) are never read and get a single
/// fresh value. Every reported conflict carries a concrete witness tuple;
/// absence of conflicts is exact up to the probe budget (a truncated
/// search adds an analysis-budget diagnostic).

#ifndef CERTFIX_ANALYSIS_ANALYZER_H_
#define CERTFIX_ANALYSIS_ANALYZER_H_

#include <string>

#include "analysis/analyze_mode.h"
#include "analysis/diagnostics.h"
#include "analysis/rule_summary.h"
#include "core/saturation.h"
#include "util/result.h"

namespace certfix {

/// \brief Bounds on the analyzer's exhaustive parts.
struct AnalyzeOptions {
  /// Probe-tuple budget for the conflict search; exceeding it truncates
  /// the search and emits an analysis-budget warning.
  size_t max_probes = 100000;
  /// Conflict diagnostics reported (distinct (rule, rule, attr) triples
  /// beyond this many are counted but not rendered).
  size_t max_witnesses = 4;
};

/// \brief Static analyzer over one rule set.
class RulesetAnalyzer {
 public:
  /// `master_schema`, when given, is the schema the master data actually
  /// has; the analyzer reports drift between it and the schema the rules
  /// were compiled against. Null means "trust the ruleset's own Rm".
  explicit RulesetAnalyzer(const RuleSet& rules,
                           SchemaPtr master_schema = nullptr);

  /// The trusted region used when a caller has none: attributes no rule
  /// ever fixes (forced into every certain region, Sect. 4.2).
  static AttrSet DefaultTrusted(const RuleSet& rules);

  /// Full analysis. Without `master` the conflict search is skipped
  /// (structural checks only, probes = 0).
  RulesetReport Analyze(const Relation* master, AttrSet trusted,
                        const AnalyzeOptions& opts = {}) const;

  /// Same analysis reusing a caller-owned saturator (the engines already
  /// hold one over their (Sigma, Dm)).
  RulesetReport AnalyzeWith(const Saturator& sat, AttrSet trusted,
                            const AnalyzeOptions& opts = {}) const;

 private:
  void CheckSchemaAndTypes(RulesetReport* report) const;
  void CheckStructure(const RuleSetSummary& summary, RulesetReport* report) const;
  void CheckShadowing(RulesetReport* report) const;
  void CheckCycles(const DependencyGraph& graph, RulesetReport* report) const;
  void CheckConflicts(const Saturator& sat, AttrSet trusted,
                      const AnalyzeOptions& opts, RulesetReport* report) const;

  const RuleSet* rules_;
  SchemaPtr rm_;  ///< expected master schema (never null after ctor)
};

/// \brief Engine precondition: analyze (sat.rules(), sat.master(), trusted)
/// under `mode`. kOff returns OK without analyzing; kWarn logs every
/// diagnostic and returns OK; kStrict additionally returns an Inconsistent
/// status carrying the first error (witness included) when any
/// error-severity diagnostic exists. `engine_name` prefixes log lines and
/// the returned message.
Status GateRuleset(const Saturator& sat, AttrSet trusted, AnalyzeMode mode,
                   const std::string& engine_name);

}  // namespace certfix

#endif  // CERTFIX_ANALYSIS_ANALYZER_H_
