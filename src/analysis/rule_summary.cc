#include "analysis/rule_summary.h"

namespace certfix {

RuleSetSummary::RuleSetSummary(const DependencyGraph& graph, AttrSet trusted)
    : trusted_(trusted) {
  const RuleSet& rules = graph.rules();
  const size_t n = rules.size();

  closure_ = trusted;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      const EditingRule& rule = rules.at(i);
      if (!closure_.Contains(rule.rhs()) &&
          rule.premise_set().SubsetOf(closure_)) {
        closure_.Add(rule.rhs());
        changed = true;
      }
    }
  }

  reachable_.resize(n);
  fanout_.resize(n);
  downstream_.resize(n);
  closure_with_self_.resize(n);
  invalidated_by_rule_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const EditingRule& rule = rules.at(i);
    reachable_[i] = rule.premise_set().SubsetOf(closure_) &&
                    !trusted_.Contains(rule.rhs());
    fanout_[i] = graph.Successors(i).size();

    // BFS from i's successors: downstream_[i] omits i unless i is cyclic.
    std::vector<bool> seen(n, false);
    std::vector<size_t> stack(graph.Successors(i));
    for (size_t s : stack) seen[s] = true;
    while (!stack.empty()) {
      size_t u = stack.back();
      stack.pop_back();
      for (size_t v : graph.Successors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
        }
      }
    }
    for (size_t j = 0; j < n; ++j) {
      if (seen[j]) downstream_[i].push_back(j);
    }
    closure_with_self_[i] = seen;
    closure_with_self_[i][i] = true;
    AttrSet region;
    for (size_t j = 0; j < n; ++j) {
      if (closure_with_self_[i][j]) region.Add(rules.at(j).rhs());
    }
    invalidated_by_rule_[i] = region;
  }

  size_t num_master_attrs =
      rules.rm_schema() ? rules.rm_schema()->num_attrs() : 0;
  rules_by_master_attr_.resize(num_master_attrs);
  for (size_t i = 0; i < n; ++i) {
    const EditingRule& rule = rules.at(i);
    AttrSet reads;
    for (AttrId a : rule.lhsm()) reads.Add(a);
    reads.Add(rule.rhsm());
    for (AttrId a : reads.ToVector()) {
      if (a < num_master_attrs) rules_by_master_attr_[a].push_back(i);
    }
  }
}

std::vector<size_t> RuleSetSummary::RulesReadingMasterAttrs(
    const AttrSet& master_attrs) const {
  std::vector<bool> member(num_rules(), false);
  for (AttrId a : master_attrs.ToVector()) {
    if (a >= rules_by_master_attr_.size()) continue;
    for (size_t i : rules_by_master_attr_[a]) member[i] = true;
  }
  std::vector<size_t> out;
  for (size_t i = 0; i < member.size(); ++i) {
    if (member[i]) out.push_back(i);
  }
  return out;
}

std::vector<size_t> RuleSetSummary::ReachableFrom(
    const std::vector<size_t>& seeds) const {
  std::vector<bool> member(num_rules(), false);
  for (size_t s : seeds) {
    if (s >= closure_with_self_.size()) continue;
    for (size_t j = 0; j < closure_with_self_[s].size(); ++j) {
      if (closure_with_self_[s][j]) member[j] = true;
    }
  }
  std::vector<size_t> out;
  for (size_t i = 0; i < member.size(); ++i) {
    if (member[i]) out.push_back(i);
  }
  return out;
}

AttrSet RuleSetSummary::InvalidatedRegion(const AttrSet& master_attrs) const {
  AttrSet region;
  for (size_t i : RulesReadingMasterAttrs(master_attrs)) {
    region = region.Union(invalidated_by_rule_[i]);
  }
  return region;
}

}  // namespace certfix
