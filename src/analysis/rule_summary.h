/// \file rule_summary.h
/// \brief Precomputed per-rule reachability / fan-out over a rule set.
///
/// DependencyGraph (core/) answers reachability questions by walking edges
/// on every call; consumers that ask repeatedly with the same Sigma — the
/// incremental engine invalidating per master delta, the analyzer emitting
/// per-rule rows, diagnostics tooling — share this summary instead. All
/// query results are defined to be identical to the corresponding
/// DependencyGraph methods (tested in tests/analyze_test.cc); only the
/// cost moves from per-query graph walks to one O(|Sigma|^2) precompute.

#ifndef CERTFIX_ANALYSIS_RULE_SUMMARY_H_
#define CERTFIX_ANALYSIS_RULE_SUMMARY_H_

#include <cstddef>
#include <vector>

#include "core/dependency_graph.h"
#include "relational/attr_set.h"

namespace certfix {

/// \brief Summary of one (Sigma, Z) pair: schema-level closure of the
/// trusted region, per-rule reachability and fan-out, and precomputed
/// master-attribute -> rule and rule -> downstream-closure maps.
class RuleSetSummary {
 public:
  RuleSetSummary() = default;
  /// Builds the summary from an existing dependency graph (the graph is
  /// only read during construction; the summary keeps no reference to it)
  /// and the trusted region Z.
  RuleSetSummary(const DependencyGraph& graph, AttrSet trusted);

  size_t num_rules() const { return fanout_.size(); }
  const AttrSet& trusted() const { return trusted_; }
  /// Schema-level forward closure of Z under Sigma: Z plus every rhs
  /// derivable by repeatedly firing rules whose premises are closed
  /// (ZProblems::Closure semantics, master data ignored).
  const AttrSet& closure() const { return closure_; }

  /// Whether rule `i` can ever fire from Z: its premise is inside the
  /// closure and its target is not already trusted.
  bool Reachable(size_t i) const { return reachable_[i]; }
  /// Dependency-graph out-degree of rule `i`.
  size_t Fanout(size_t i) const { return fanout_[i]; }
  /// Rules reachable from `i` through one or more dependency edges,
  /// ascending. Contains `i` itself iff `i` lies on a cycle.
  const std::vector<size_t>& Downstream(size_t i) const {
    return downstream_[i];
  }

  /// Same contract as DependencyGraph::RulesReadingMasterAttrs: rules
  /// whose master side (Xm or Bm) intersects `master_attrs`, ascending.
  std::vector<size_t> RulesReadingMasterAttrs(const AttrSet& master_attrs) const;
  /// Same contract as DependencyGraph::ReachableFrom: transitive closure
  /// over successor edges, seeds included, ascending.
  std::vector<size_t> ReachableFrom(const std::vector<size_t>& seeds) const;
  /// Same contract as DependencyGraph::InvalidatedRegion: rhs attributes
  /// of ReachableFrom(RulesReadingMasterAttrs(master_attrs)).
  AttrSet InvalidatedRegion(const AttrSet& master_attrs) const;

 private:
  AttrSet trusted_;
  AttrSet closure_;
  std::vector<bool> reachable_;
  std::vector<size_t> fanout_;
  /// downstream_[i]: strict-ish transitive successors (see Downstream).
  std::vector<std::vector<size_t>> downstream_;
  /// closure_with_self_[i]: ReachableFrom({i}) as a membership vector.
  std::vector<std::vector<bool>> closure_with_self_;
  /// invalidated_by_rule_[i]: rhs attrs of ReachableFrom({i}).
  std::vector<AttrSet> invalidated_by_rule_;
  /// rules_by_master_attr_[a]: rules whose (Xm, Bm) contains master
  /// attribute a, ascending.
  std::vector<std::vector<size_t>> rules_by_master_attr_;
};

}  // namespace certfix

#endif  // CERTFIX_ANALYSIS_RULE_SUMMARY_H_
