/// \file analyze_mode.h
/// \brief Precondition-gate mode shared by the repair engines' options.
///
/// Kept dependency-free (no analyzer includes) so that engine option
/// structs can carry a mode without pulling the whole analysis layer into
/// every translation unit; the gate itself lives in analysis/analyzer.h.

#ifndef CERTFIX_ANALYSIS_ANALYZE_MODE_H_
#define CERTFIX_ANALYSIS_ANALYZE_MODE_H_

#include <string>

#include "util/result.h"

namespace certfix {

/// \brief How an engine treats ruleset analysis before accepting work.
///
///  - kOff:    no analysis; the engine trusts its (Sigma, Dm, Z) as-is.
///  - kWarn:   run the analyzer at construction, log every diagnostic at
///             warn level, proceed regardless.
///  - kStrict: run the analyzer; refuse the session (fail construction /
///             first mutation) when any error-severity diagnostic exists,
///             carrying the witness in the returned Status.
enum class AnalyzeMode { kOff = 0, kWarn = 1, kStrict = 2 };

inline const char* AnalyzeModeName(AnalyzeMode mode) {
  switch (mode) {
    case AnalyzeMode::kOff: return "off";
    case AnalyzeMode::kWarn: return "warn";
    case AnalyzeMode::kStrict: return "strict";
  }
  return "?";
}

inline Result<AnalyzeMode> ParseAnalyzeMode(const std::string& text) {
  if (text == "off") return AnalyzeMode::kOff;
  if (text == "warn") return AnalyzeMode::kWarn;
  if (text == "strict") return AnalyzeMode::kStrict;
  return Status::InvalidArgument("unknown analyze mode '" + text +
                                 "' (expected off|warn|strict)");
}

}  // namespace certfix

#endif  // CERTFIX_ANALYSIS_ANALYZE_MODE_H_
