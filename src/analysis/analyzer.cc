#include "analysis/analyzer.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <tuple>

#include "core/exhaustive.h"
#include "core/master_index.h"
#include "util/logging.h"

namespace certfix {

namespace {

bool TypeCompatible(DataType type, const Value& v) {
  if (v.is_null()) return true;
  switch (type) {
    case DataType::kString: return v.is_string();
    case DataType::kInt: return v.is_int();
    case DataType::kDouble: return v.is_double() || v.is_int();
  }
  return false;
}

/// True when every tuple matching `specific` also satisfies `general`.
bool CellImplied(const PatternValue& general, const PatternValue& specific) {
  if (general.is_wildcard()) return true;
  if (general.is_const()) {
    return specific.is_const() && specific.value() == general.value();
  }
  // general is a negation x != c.
  if (specific.is_neg_const()) return specific.value() == general.value();
  return specific.is_const() && specific.value() != general.value();
}

/// True when rule `i` is at least as general as rule `j` with the same
/// fix: any move (j, tm) on any tuple is also a move (i, tm) with the
/// same effect, so `j` is redundant.
bool Shadows(const EditingRule& i, const EditingRule& j) {
  if (i.rhs() != j.rhs() || i.rhsm() != j.rhsm()) return false;
  for (size_t k = 0; k < i.lhs().size(); ++k) {
    AttrId x = i.lhs()[k];
    auto it = std::find(j.lhs().begin(), j.lhs().end(), x);
    if (it == j.lhs().end()) return false;
    size_t m = static_cast<size_t>(it - j.lhs().begin());
    if (j.lhsm()[m] != i.lhsm()[k]) return false;
  }
  PatternTuple normalized = i.pattern().Normalized();
  for (const auto& [attr, cell] : normalized.cells()) {
    if (!CellImplied(cell, j.pattern().Get(attr))) return false;
  }
  return true;
}

std::string QuotedNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += "'" + names[i] + "'";
  }
  return out;
}

}  // namespace

RulesetAnalyzer::RulesetAnalyzer(const RuleSet& rules, SchemaPtr master_schema)
    : rules_(&rules),
      rm_(master_schema ? std::move(master_schema) : rules.rm_schema()) {}

AttrSet RulesetAnalyzer::DefaultTrusted(const RuleSet& rules) {
  return rules.r_schema()->AllAttrs().Minus(rules.RhsUnion());
}

RulesetReport RulesetAnalyzer::Analyze(const Relation* master, AttrSet trusted,
                                       const AnalyzeOptions& opts) const {
  DependencyGraph graph(*rules_);
  RuleSetSummary summary(graph, trusted);

  RulesetReport report;
  report.num_rules = rules_->size();
  const SchemaPtr& r = rules_->r_schema();
  for (AttrId a : trusted.ToVector()) report.trusted.push_back(r->attr_name(a));
  for (AttrId a : summary.closure().Minus(trusted).ToVector()) {
    report.fixable.push_back(r->attr_name(a));
  }
  for (size_t i = 0; i < rules_->size(); ++i) {
    RuleSummaryRow row;
    row.rule = rules_->at(i).name();
    row.reachable = summary.Reachable(i);
    row.fanout = summary.Fanout(i);
    row.downstream = summary.Downstream(i).size();
    report.summary.push_back(std::move(row));
  }

  CheckSchemaAndTypes(&report);
  bool schema_ok = report.ok();
  if (master != nullptr && schema_ok &&
      !master->schema()->Equals(*rules_->rm_schema())) {
    Diagnostic d;
    d.kind = DiagnosticKind::kUnknownAttribute;
    d.severity = DiagnosticSeverity::kError;
    d.message = "master relation schema " + master->schema()->ToString() +
                " does not match the ruleset's master schema " +
                rules_->rm_schema()->ToString();
    report.diagnostics.push_back(std::move(d));
    schema_ok = false;
  }
  if (master != nullptr && schema_ok && !rules_->empty()) {
    MasterIndex index(*rules_, *master);
    Saturator sat(*rules_, *master, index);
    CheckConflicts(sat, trusted, opts, &report);
  }
  CheckCycles(graph, &report);
  CheckStructure(summary, &report);
  CheckShadowing(&report);
  return report;
}

RulesetReport RulesetAnalyzer::AnalyzeWith(const Saturator& sat,
                                           AttrSet trusted,
                                           const AnalyzeOptions& opts) const {
  DependencyGraph graph(*rules_);
  RuleSetSummary summary(graph, trusted);

  RulesetReport report;
  report.num_rules = rules_->size();
  const SchemaPtr& r = rules_->r_schema();
  for (AttrId a : trusted.ToVector()) report.trusted.push_back(r->attr_name(a));
  for (AttrId a : summary.closure().Minus(trusted).ToVector()) {
    report.fixable.push_back(r->attr_name(a));
  }
  for (size_t i = 0; i < rules_->size(); ++i) {
    RuleSummaryRow row;
    row.rule = rules_->at(i).name();
    row.reachable = summary.Reachable(i);
    row.fanout = summary.Fanout(i);
    row.downstream = summary.Downstream(i).size();
    report.summary.push_back(std::move(row));
  }

  CheckSchemaAndTypes(&report);
  if (report.ok() && !rules_->empty()) {
    CheckConflicts(sat, trusted, opts, &report);
  }
  CheckCycles(graph, &report);
  CheckStructure(summary, &report);
  CheckShadowing(&report);
  return report;
}

void RulesetAnalyzer::CheckSchemaAndTypes(RulesetReport* report) const {
  const SchemaPtr& r = rules_->r_schema();
  for (size_t i = 0; i < rules_->size(); ++i) {
    const EditingRule& rule = rules_->at(i);
    const SchemaPtr& rule_rm = rule.rm_schema();
    std::set<AttrId> seen_master;
    std::vector<AttrId> master_side(rule.lhsm());
    master_side.push_back(rule.rhsm());
    for (AttrId ma : master_side) {
      if (!seen_master.insert(ma).second) continue;
      if (ma >= rm_->num_attrs() ||
          rule_rm->attr_name(ma) != rm_->attr_name(ma)) {
        Diagnostic d;
        d.kind = DiagnosticKind::kUnknownAttribute;
        d.severity = DiagnosticSeverity::kError;
        d.rules = {rule.name()};
        d.attr = rule_rm->attr_name(ma);
        d.message = "rule '" + rule.name() + "' references master attribute '" +
                    rule_rm->attr_name(ma) + "' absent from " +
                    rm_->ToString();
        report->diagnostics.push_back(std::move(d));
        continue;
      }
      // Names agree; flag a type change at the same position.
      if (rule_rm->attr_type(ma) != rm_->attr_type(ma)) {
        Diagnostic d;
        d.kind = DiagnosticKind::kTypeMismatch;
        d.severity = DiagnosticSeverity::kError;
        d.rules = {rule.name()};
        d.attr = rm_->attr_name(ma);
        d.message = "rule '" + rule.name() + "' expects master attribute '" +
                    rm_->attr_name(ma) + "' to be " +
                    DataTypeName(rule_rm->attr_type(ma)) + " but it is " +
                    DataTypeName(rm_->attr_type(ma));
        report->diagnostics.push_back(std::move(d));
      }
    }
    // Positional comparisons t[X] = tm[Xm] and the copy t[B] := tm[Bm]
    // are type-incompatible when the paired attributes disagree.
    for (size_t k = 0; k < rule.lhs().size(); ++k) {
      AttrId x = rule.lhs()[k];
      AttrId xm = rule.lhsm()[k];
      if (xm < rule_rm->num_attrs() &&
          r->attr_type(x) != rule_rm->attr_type(xm)) {
        Diagnostic d;
        d.kind = DiagnosticKind::kTypeMismatch;
        d.severity = DiagnosticSeverity::kError;
        d.rules = {rule.name()};
        d.attr = r->attr_name(x);
        d.message = "rule '" + rule.name() + "' compares " +
                    r->attr_name(x) + " (" + DataTypeName(r->attr_type(x)) +
                    ") against master attribute " + rule_rm->attr_name(xm) +
                    " (" + DataTypeName(rule_rm->attr_type(xm)) +
                    "); the key can never match";
        report->diagnostics.push_back(std::move(d));
      }
    }
    if (rule.rhsm() < rule_rm->num_attrs() &&
        r->attr_type(rule.rhs()) != rule_rm->attr_type(rule.rhsm())) {
      Diagnostic d;
      d.kind = DiagnosticKind::kTypeMismatch;
      d.severity = DiagnosticSeverity::kError;
      d.rules = {rule.name()};
      d.attr = r->attr_name(rule.rhs());
      d.message = "rule '" + rule.name() + "' fixes " +
                  r->attr_name(rule.rhs()) + " (" +
                  DataTypeName(r->attr_type(rule.rhs())) +
                  ") from master attribute " + rule_rm->attr_name(rule.rhsm()) +
                  " (" + DataTypeName(rule_rm->attr_type(rule.rhsm())) + ")";
      report->diagnostics.push_back(std::move(d));
    }
    for (const auto& [attr, cell] : rule.pattern().cells()) {
      if (cell.is_wildcard()) continue;
      if (!TypeCompatible(r->attr_type(attr), cell.value())) {
        Diagnostic d;
        d.kind = DiagnosticKind::kTypeMismatch;
        d.severity = DiagnosticSeverity::kError;
        d.rules = {rule.name()};
        d.attr = r->attr_name(attr);
        d.message = "rule '" + rule.name() + "' pattern constant " +
                    cell.value().ToString() + " on attribute '" +
                    r->attr_name(attr) + "' is not " +
                    DataTypeName(r->attr_type(attr));
        report->diagnostics.push_back(std::move(d));
      }
    }
  }
}

void RulesetAnalyzer::CheckStructure(const RuleSetSummary& summary,
                                     RulesetReport* report) const {
  const SchemaPtr& r = rules_->r_schema();
  for (size_t i = 0; i < rules_->size(); ++i) {
    const EditingRule& rule = rules_->at(i);
    if (summary.Reachable(i)) continue;
    Diagnostic d;
    d.kind = DiagnosticKind::kDeadRule;
    d.severity = DiagnosticSeverity::kWarning;
    d.rules = {rule.name()};
    d.attr = r->attr_name(rule.rhs());
    if (summary.trusted().Contains(rule.rhs())) {
      d.message = "rule '" + rule.name() +
                  "' can never fire: its target attribute '" +
                  r->attr_name(rule.rhs()) + "' is already trusted";
    } else {
      std::string missing;
      for (AttrId a :
           rule.premise_set().Minus(summary.closure()).ToVector()) {
        if (!missing.empty()) missing += ", ";
        missing += r->attr_name(a);
      }
      d.message = "rule '" + rule.name() +
                  "' is unreachable: premise attribute(s) {" + missing +
                  "} can never be validated from the trusted region";
    }
    report->diagnostics.push_back(std::move(d));
  }
  for (AttrId a : r->AllAttrs().Minus(summary.closure()).ToVector()) {
    Diagnostic d;
    d.kind = DiagnosticKind::kCoverageGap;
    d.severity = DiagnosticSeverity::kWarning;
    d.attr = r->attr_name(a);
    d.message = "no rule chain can fix attribute '" + r->attr_name(a) +
                "' from the trusted region; repairs leave it unvalidated";
    report->diagnostics.push_back(std::move(d));
  }
}

void RulesetAnalyzer::CheckShadowing(RulesetReport* report) const {
  for (size_t j = 0; j < rules_->size(); ++j) {
    for (size_t i = 0; i < rules_->size(); ++i) {
      if (i == j) continue;
      if (!Shadows(rules_->at(i), rules_->at(j))) continue;
      // On mutual (identical) shadowing keep the earlier rule.
      if (i > j && Shadows(rules_->at(j), rules_->at(i))) continue;
      Diagnostic d;
      d.kind = DiagnosticKind::kShadowedRule;
      d.severity = DiagnosticSeverity::kWarning;
      d.rules = {rules_->at(j).name(), rules_->at(i).name()};
      d.attr = rules_->r_schema()->attr_name(rules_->at(j).rhs());
      d.message = "rule '" + rules_->at(j).name() +
                  "' is redundant: every move it makes is also made by the "
                  "more general rule '" + rules_->at(i).name() + "'";
      report->diagnostics.push_back(std::move(d));
      break;
    }
  }
}

void RulesetAnalyzer::CheckCycles(const DependencyGraph& graph,
                                  RulesetReport* report) const {
  // Tarjan's SCC; components of size > 1 are the cycles (self-loops are
  // impossible: B is never in X, and the graph skips u == u edges).
  const size_t n = graph.num_nodes();
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  std::vector<std::vector<size_t>> components;
  int next_index = 0;
  std::function<void(size_t)> strongconnect = [&](size_t u) {
    index[u] = lowlink[u] = next_index++;
    stack.push_back(u);
    on_stack[u] = true;
    for (size_t v : graph.Successors(u)) {
      if (index[v] < 0) {
        strongconnect(v);
        lowlink[u] = std::min(lowlink[u], lowlink[v]);
      } else if (on_stack[v]) {
        lowlink[u] = std::min(lowlink[u], index[v]);
      }
    }
    if (lowlink[u] == index[u]) {
      std::vector<size_t> comp;
      size_t v;
      do {
        v = stack.back();
        stack.pop_back();
        on_stack[v] = false;
        comp.push_back(v);
      } while (v != u);
      if (comp.size() > 1) {
        std::sort(comp.begin(), comp.end());
        components.push_back(std::move(comp));
      }
    }
  };
  for (size_t u = 0; u < n; ++u) {
    if (index[u] < 0) strongconnect(u);
  }
  std::sort(components.begin(), components.end());
  for (const std::vector<size_t>& comp : components) {
    Diagnostic d;
    d.kind = DiagnosticKind::kDependencyCycle;
    d.severity = DiagnosticSeverity::kWarning;
    for (size_t u : comp) d.rules.push_back(rules_->at(u).name());
    d.message = "rules " + QuotedNames(d.rules) +
                " form a dependency cycle: each can enable the others, so "
                "firing order is data-dependent (saturation still "
                "terminates; fixed attributes are never re-validated)";
    report->diagnostics.push_back(std::move(d));
  }
}

void RulesetAnalyzer::CheckConflicts(const Saturator& sat, AttrSet trusted,
                                     const AnalyzeOptions& opts,
                                     RulesetReport* report) const {
  const Relation& dm = sat.master();
  const SchemaPtr& r = rules_->r_schema();
  const AttrSet mentioned = rules_->MentionedAttrs();
  const std::set<Value>& dom = sat.Dom();
  const size_t num_attrs = r->num_attrs();

  // Per-attribute candidate domains (see the header comment): master
  // values the attribute is keyed against, positive pattern constants on
  // it, plus one fresh value standing in for every other constant.
  std::vector<std::vector<Value>> cand(num_attrs);
  size_t fresh_ordinal = 0;
  for (AttrId a = 0; a < num_attrs; ++a) {
    if (!trusted.Contains(a) || !mentioned.Contains(a)) {
      cand[a].push_back(FreshValue(r->attr_type(a), fresh_ordinal++, dom));
      continue;
    }
    std::set<Value> vals;
    for (const EditingRule& rule : *rules_) {
      for (size_t k = 0; k < rule.lhs().size(); ++k) {
        if (rule.lhs()[k] != a) continue;
        std::vector<Value> distinct = dm.DistinctValues(rule.lhsm()[k]);
        for (Value& v : distinct) vals.insert(std::move(v));
      }
      PatternValue cell = rule.pattern().Get(a);
      if (cell.is_const()) vals.insert(cell.value());
    }
    vals.insert(FreshValue(r->attr_type(a), fresh_ordinal++, dom));
    cand[a].assign(vals.begin(), vals.end());
  }

  size_t total = 1;
  bool truncated = false;
  for (AttrId a = 0; a < num_attrs; ++a) {
    if (total > opts.max_probes / std::max<size_t>(cand[a].size(), 1)) {
      truncated = true;
      break;
    }
    total *= cand[a].size();
  }

  PoolPtr probe_pool = std::make_shared<ValuePool>();
  PoolBridge bridge(probe_pool.get(), dm.pool().get());
  const std::vector<AttrId> witness_attrs =
      trusted.Intersect(mentioned).ToVector();
  std::set<std::tuple<size_t, size_t, AttrId>> seen;
  size_t reported = 0;
  size_t probes = 0;
  std::vector<size_t> odo(num_attrs, 0);
  while (probes < opts.max_probes) {
    Tuple t(r, probe_pool);
    for (AttrId a = 0; a < num_attrs; ++a) t.Set(a, cand[a][odo[a]]);
    SaturationResult res = sat.CheckUniqueFix(t, trusted, &bridge);
    ++probes;
    for (const FixConflict& c : res.conflicts) {
      size_t lo = std::min(c.rule_a, c.rule_b);
      size_t hi = std::max(c.rule_a, c.rule_b);
      if (!seen.emplace(lo, hi, c.attr).second) continue;
      if (reported >= opts.max_witnesses) continue;
      ++reported;
      Diagnostic d;
      d.kind = DiagnosticKind::kRuleConflict;
      d.severity = DiagnosticSeverity::kError;
      d.rules = {rules_->at(c.rule_a).name(), rules_->at(c.rule_b).name()};
      d.attr = r->attr_name(c.attr);
      for (AttrId a : witness_attrs) {
        if (!d.witness.empty()) d.witness += ", ";
        d.witness += r->attr_name(a) + "=" + t.at(a).ToString();
      }
      d.message = "rules '" + d.rules[0] + "' and '" + d.rules[1] +
                  "' propose conflicting fixes " + d.attr +
                  ":=" + c.value_a.ToString() + " vs " + d.attr +
                  ":=" + c.value_b.ToString() + " for a tuple with " +
                  d.witness;
      report->diagnostics.push_back(std::move(d));
    }
    bool wrapped = true;
    for (AttrId a = 0; a < num_attrs; ++a) {
      if (++odo[a] < cand[a].size()) {
        wrapped = false;
        break;
      }
      odo[a] = 0;
    }
    if (wrapped) break;
  }
  report->probes = probes;
  if (seen.size() > reported) {
    Diagnostic d;
    d.kind = DiagnosticKind::kRuleConflict;
    d.severity = DiagnosticSeverity::kError;
    d.message = std::to_string(seen.size() - reported) +
                " further conflicting rule pair(s) found but not rendered "
                "(max_witnesses)";
    report->diagnostics.push_back(std::move(d));
  }
  if (truncated) {
    Diagnostic d;
    d.kind = DiagnosticKind::kAnalysisBudget;
    d.severity = DiagnosticSeverity::kWarning;
    d.message = "conflict search truncated at " + std::to_string(probes) +
                " probe tuple(s); a clean result is not exhaustive (raise "
                "max_probes for a full search)";
    report->diagnostics.push_back(std::move(d));
  }
}

Status GateRuleset(const Saturator& sat, AttrSet trusted, AnalyzeMode mode,
                   const std::string& engine_name) {
  if (mode == AnalyzeMode::kOff) return Status::OK();
  RulesetAnalyzer analyzer(sat.rules());
  RulesetReport report = analyzer.AnalyzeWith(sat, trusted);
  for (const Diagnostic& d : report.diagnostics) {
    CERTFIX_LOG(kWarn) << engine_name << " analyze_first: " << d.ToString();
  }
  if (mode == AnalyzeMode::kStrict && !report.ok()) {
    const Diagnostic* first = report.FirstError();
    return Status::Inconsistent(
        engine_name + ": ruleset rejected by analyze_first=strict (" +
        std::to_string(report.errors()) + " error(s)): " + first->ToString());
  }
  return Status::OK();
}

}  // namespace certfix
