/// \file violation.h
/// \brief CFD violation detection over a relation.

#ifndef CERTFIX_CFD_VIOLATION_H_
#define CERTFIX_CFD_VIOLATION_H_

#include <vector>

#include "cfd/cfd.h"
#include "relational/relation.h"

namespace certfix {

/// \brief One detected violation: a single dirty cell (constant CFDs) or a
/// pair of tuples disagreeing on B (variable CFDs; tuple_b >= 0).
struct Violation {
  size_t cfd_idx = 0;
  size_t tuple_a = 0;
  long tuple_b = -1;  ///< -1 for single-tuple violations
  AttrId attr = 0;    ///< the rhs attribute B
};

/// \brief Detects all violations of a CFD set in a relation. Constant CFDs
/// are checked per tuple; variable CFDs via hashing on tp-matching X
/// groups (reported pairwise within each group against the group's first
/// deviating pair to keep output linear-ish).
std::vector<Violation> DetectViolations(const CfdSet& cfds,
                                        const Relation& rel);

/// Number of violations (convenience for tests and IncRep's loop).
size_t CountViolations(const CfdSet& cfds, const Relation& rel);

}  // namespace certfix

#endif  // CERTFIX_CFD_VIOLATION_H_
