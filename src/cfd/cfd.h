/// \file cfd.h
/// \brief Conditional functional dependencies (CFDs), the constraint class
/// behind the paper's motivating Example 1 and the IncRep baseline [14].

#ifndef CERTFIX_CFD_CFD_H_
#define CERTFIX_CFD_CFD_H_

#include <string>
#include <vector>

#include "pattern/pattern_tuple.h"
#include "relational/attr_set.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "util/result.h"

namespace certfix {

/// \brief A CFD psi = (X -> B, tp) over one schema R.
///
/// tp is a pattern over X and B using constants and wildcards. When tp[B]
/// is a constant the CFD is a *constant* CFD (violable by a single tuple);
/// otherwise it is a *variable* CFD (violations are tuple pairs). Editing
/// rules are deliberately NOT expressible as CFDs (Sect. 2, Remarks) — the
/// two classes coexist here because IncRep consumes CFDs.
class Cfd {
 public:
  Cfd() = default;

  static Result<Cfd> Make(std::string name, SchemaPtr schema,
                          std::vector<AttrId> x, AttrId b, PatternTuple tp);
  static Result<Cfd> MakeByName(std::string name, SchemaPtr schema,
                                const std::vector<std::string>& x,
                                const std::string& b, PatternTuple tp);

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }
  const std::vector<AttrId>& lhs() const { return x_; }
  AttrSet lhs_set() const { return x_set_; }
  AttrId rhs() const { return b_; }
  const PatternTuple& pattern() const { return tp_; }

  /// Constant CFD: tp[B] is a constant.
  bool IsConstant() const { return tp_.Get(b_).is_const(); }

  /// Whether the tuple matches the lhs part of the pattern tp[X].
  bool MatchesLhs(const Tuple& t) const;
  /// Same test on a stored row, without materializing a row view.
  bool MatchesLhs(const Relation& rel, size_t row) const;

  /// For a constant CFD: the single-tuple violation test (t matches tp[X]
  /// but t[B] != tp[B]).
  bool ViolatedBy(const Tuple& t) const;
  /// Same test on a stored row, without materializing a row view.
  bool ViolatedBy(const Relation& rel, size_t row) const;

  /// For a variable CFD: the pair violation test (both match tp[X], agree
  /// on X, but differ on B or mismatch a constant tp[B]).
  bool ViolatedBy(const Tuple& t1, const Tuple& t2) const;

  std::string ToString() const;

 private:
  std::string name_;
  SchemaPtr schema_;
  std::vector<AttrId> x_;
  AttrSet x_set_;
  AttrId b_ = 0;
  PatternTuple tp_;
};

/// \brief A set of CFDs over one schema.
class CfdSet {
 public:
  CfdSet() = default;
  explicit CfdSet(SchemaPtr schema) : schema_(std::move(schema)) {}

  Status Add(Cfd cfd);
  size_t size() const { return cfds_.size(); }
  const Cfd& at(size_t i) const { return cfds_[i]; }
  const SchemaPtr& schema() const { return schema_; }

  std::vector<Cfd>::const_iterator begin() const { return cfds_.begin(); }
  std::vector<Cfd>::const_iterator end() const { return cfds_.end(); }

 private:
  SchemaPtr schema_;
  std::vector<Cfd> cfds_;
};

}  // namespace certfix

#endif  // CERTFIX_CFD_CFD_H_
