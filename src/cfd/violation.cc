#include "cfd/violation.h"

#include <unordered_map>

namespace certfix {

std::vector<Violation> DetectViolations(const CfdSet& cfds,
                                        const Relation& rel) {
  std::vector<Violation> out;
  for (size_t c = 0; c < cfds.size(); ++c) {
    const Cfd& cfd = cfds.at(c);
    if (cfd.IsConstant()) {
      for (size_t i = 0; i < rel.size(); ++i) {
        if (cfd.ViolatedBy(rel, i)) {
          out.push_back(Violation{c, i, -1, cfd.rhs()});
        }
      }
      continue;
    }
    // Variable CFD: group tp[X]-matching tuples by t[X]; within a group,
    // report every tuple that disagrees with the group representative.
    // contract-lint: allow(idkey-map) one-shot grouping per detect call
    std::unordered_map<IdKey, std::vector<size_t>, IdKeyHash> groups;
    IdKey key(cfd.lhs().size());
    for (size_t i = 0; i < rel.size(); ++i) {
      if (cfd.MatchesLhs(rel, i)) {
        for (size_t k = 0; k < cfd.lhs().size(); ++k) {
          key[k] = rel.CellId(i, cfd.lhs()[k]);
        }
        groups[key].push_back(i);
      }
    }
    for (const auto& [gkey, members] : groups) {
      (void)gkey;
      if (members.size() < 2) continue;
      size_t rep = members[0];
      for (size_t k = 1; k < members.size(); ++k) {
        if (rel.CellId(members[k], cfd.rhs()) != rel.CellId(rep, cfd.rhs())) {
          out.push_back(Violation{c, rep, static_cast<long>(members[k]),
                                  cfd.rhs()});
        }
      }
    }
  }
  return out;
}

size_t CountViolations(const CfdSet& cfds, const Relation& rel) {
  return DetectViolations(cfds, rel).size();
}

}  // namespace certfix
