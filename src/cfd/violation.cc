#include "cfd/violation.h"

#include <unordered_map>

namespace certfix {

std::vector<Violation> DetectViolations(const CfdSet& cfds,
                                        const Relation& rel) {
  std::vector<Violation> out;
  for (size_t c = 0; c < cfds.size(); ++c) {
    const Cfd& cfd = cfds.at(c);
    if (cfd.IsConstant()) {
      for (size_t i = 0; i < rel.size(); ++i) {
        if (cfd.ViolatedBy(rel.at(i))) {
          out.push_back(Violation{c, i, -1, cfd.rhs()});
        }
      }
      continue;
    }
    // Variable CFD: group tp[X]-matching tuples by t[X]; within a group,
    // report every tuple that disagrees with the group representative.
    std::unordered_map<std::string, std::vector<size_t>> groups;
    for (size_t i = 0; i < rel.size(); ++i) {
      if (cfd.MatchesLhs(rel.at(i))) {
        groups[ProjectKey(rel.at(i), cfd.lhs())].push_back(i);
      }
    }
    for (const auto& [key, members] : groups) {
      (void)key;
      if (members.size() < 2) continue;
      size_t rep = members[0];
      for (size_t k = 1; k < members.size(); ++k) {
        if (rel.at(members[k]).at(cfd.rhs()) != rel.at(rep).at(cfd.rhs())) {
          out.push_back(Violation{c, rep, static_cast<long>(members[k]),
                                  cfd.rhs()});
        }
      }
    }
  }
  return out;
}

size_t CountViolations(const CfdSet& cfds, const Relation& rel) {
  return DetectViolations(cfds, rel).size();
}

}  // namespace certfix
