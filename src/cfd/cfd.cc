#include "cfd/cfd.h"

namespace certfix {

Result<Cfd> Cfd::Make(std::string name, SchemaPtr schema,
                      std::vector<AttrId> x, AttrId b, PatternTuple tp) {
  for (AttrId a : x) {
    if (a >= schema->num_attrs()) {
      return Status::OutOfRange("cfd " + name + ": X attr out of range");
    }
  }
  if (b >= schema->num_attrs()) {
    return Status::OutOfRange("cfd " + name + ": B out of range");
  }
  AttrSet x_set = AttrSet::FromVector(x);
  if (x_set.Contains(b)) {
    return Status::InvalidArgument("cfd " + name + ": B must not be in X");
  }
  AttrSet allowed = x_set;
  allowed.Add(b);
  if (!tp.attrs().SubsetOf(allowed)) {
    return Status::InvalidArgument("cfd " + name +
                                   ": pattern mentions attrs outside X+B");
  }
  Cfd cfd;
  cfd.name_ = std::move(name);
  cfd.schema_ = std::move(schema);
  cfd.x_ = std::move(x);
  cfd.x_set_ = x_set;
  cfd.b_ = b;
  cfd.tp_ = std::move(tp);
  return cfd;
}

Result<Cfd> Cfd::MakeByName(std::string name, SchemaPtr schema,
                            const std::vector<std::string>& x,
                            const std::string& b, PatternTuple tp) {
  CERTFIX_ASSIGN_OR_RETURN(std::vector<AttrId> xi, schema->Resolve(x));
  CERTFIX_ASSIGN_OR_RETURN(AttrId bi, schema->IndexOf(b));
  return Make(std::move(name), std::move(schema), std::move(xi), bi,
              std::move(tp));
}

bool Cfd::MatchesLhs(const Tuple& t) const {
  for (AttrId a : x_) {
    if (!tp_.Get(a).Matches(t.at(a))) return false;
  }
  return true;
}

bool Cfd::MatchesLhs(const Relation& rel, size_t row) const {
  // cells() lookups avoid the Value copy a Get() call would make.
  for (AttrId a : x_) {
    auto it = tp_.cells().find(a);
    if (it != tp_.cells().end() && !it->second.Matches(rel.Cell(row, a))) {
      return false;
    }
  }
  return true;
}

bool Cfd::ViolatedBy(const Tuple& t) const {
  if (!IsConstant()) return false;
  if (!MatchesLhs(t)) return false;
  return t.at(b_) != tp_.Get(b_).value();
}

bool Cfd::ViolatedBy(const Relation& rel, size_t row) const {
  auto itb = tp_.cells().find(b_);
  if (itb == tp_.cells().end() || !itb->second.is_const()) return false;
  if (!MatchesLhs(rel, row)) return false;
  return rel.Cell(row, b_) != itb->second.value();
}

bool Cfd::ViolatedBy(const Tuple& t1, const Tuple& t2) const {
  if (!MatchesLhs(t1) || !MatchesLhs(t2)) return false;
  for (AttrId a : x_) {
    if (t1.at(a) != t2.at(a)) return false;
  }
  PatternValue pb = tp_.Get(b_);
  if (pb.is_const()) {
    return t1.at(b_) != pb.value() || t2.at(b_) != pb.value();
  }
  return t1.at(b_) != t2.at(b_);
}

std::string Cfd::ToString() const {
  std::string out = name_ + ": (";
  for (size_t i = 0; i < x_.size(); ++i) {
    if (i > 0) out += ",";
    out += schema_->attr_name(x_[i]);
  }
  out += " -> " + schema_->attr_name(b_) + ", " + tp_.ToString() + ")";
  return out;
}

Status CfdSet::Add(Cfd cfd) {
  if (schema_ == nullptr) {
    schema_ = cfd.schema();
  } else if (!cfd.schema()->Equals(*schema_)) {
    return Status::InvalidArgument("cfd " + cfd.name() +
                                   " is over a different schema");
  }
  cfds_.push_back(std::move(cfd));
  return Status::OK();
}

}  // namespace certfix
