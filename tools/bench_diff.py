#!/usr/bin/env python3
"""Diff a benchmark JSON against its checked-in baseline with tolerance.

Understands both formats this repo emits:

  * google-benchmark output (BENCH_micro.json): per-benchmark cpu_time is
    compared by name; a benchmark may be slower than baseline by at most
    the tolerance factor. New/removed benchmarks are reported but do not
    fail (the set evolves with the code).
  * the custom summaries of bench_stream_throughput /
    bench_incremental_updates: numeric fields are classified by name —
    `*_per_sec` and `*speedup*` must not fall below baseline/tolerance,
    `*_seconds` must not exceed baseline*tolerance, and boolean
    `output_identical` must stay true (that one is a correctness gate,
    not a perf number, so it ignores the tolerance).

The default tolerance is deliberately loose (5x): CI runners vary a lot,
and the diff exists to catch order-of-magnitude regressions (an
accidentally quadratic probe loop, a lost index), not single-digit
percentages.

Usage: tools/bench_diff.py <current.json> <baseline.json> [--tolerance X]
Exit 1 on any violation.
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def diff_google_benchmark(current, baseline, tol, failures):
    base = {b["name"]: b for b in baseline.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}
    cur = {b["name"]: b for b in current.get("benchmarks", [])
           if b.get("run_type", "iteration") == "iteration"}
    for name in sorted(base.keys() - cur.keys()):
        print("  note: benchmark removed: %s" % name)
    for name in sorted(cur.keys() - base.keys()):
        print("  note: new benchmark (no baseline): %s" % name)
    for name in sorted(cur.keys() & base.keys()):
        b, c = base[name]["cpu_time"], cur[name]["cpu_time"]
        ratio = c / b if b else float("inf")
        marker = ""
        if ratio > tol:
            failures.append("%s: cpu_time %.1f%s vs baseline %.1f%s "
                            "(%.1fx > %.1fx tolerance)"
                            % (name, c, cur[name].get("time_unit", "ns"),
                               b, base[name].get("time_unit", "ns"),
                               ratio, tol))
            marker = "  <-- FAIL"
        print("  %-45s %10.1f vs %10.1f  (%.2fx)%s"
              % (name, c, b, ratio, marker))


def classify(key):
    if key.endswith("_per_sec") or "speedup" in key:
        return "higher"
    if key.endswith("_seconds") or key.endswith("_time"):
        return "lower"
    return None


def diff_custom(current, baseline, tol, failures, prefix=""):
    for key, bval in baseline.items():
        if key not in current:
            print("  note: field removed: %s%s" % (prefix, key))
            continue
        cval = current[key]
        if key == "output_identical":
            if cval is not True:
                failures.append("%s%s: output no longer identical"
                                % (prefix, key))
            continue
        if isinstance(bval, dict) and isinstance(cval, dict):
            diff_custom(cval, bval, tol, failures, prefix + key + ".")
            continue
        if isinstance(bval, list) and isinstance(cval, list):
            for i, (b, c) in enumerate(zip(bval, cval)):
                if isinstance(b, dict):
                    diff_custom(c, b, tol, failures,
                                "%s%s[%d]." % (prefix, key, i))
            continue
        kind = classify(key)
        if kind is None or not isinstance(bval, (int, float)) \
                or isinstance(bval, bool) or not bval:
            continue
        ratio = cval / bval
        bad = (kind == "higher" and ratio < 1.0 / tol) or \
              (kind == "lower" and ratio > tol)
        if bad:
            failures.append("%s%s: %s vs baseline %s (%s-is-better, "
                            "%.2fx outside %.1fx tolerance)"
                            % (prefix, key, cval, bval, kind, ratio, tol))
        print("  %-45s %12s vs %12s  (%.2fx)%s"
              % (prefix + key, cval, bval, ratio,
                 "  <-- FAIL" if bad else ""))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=5.0)
    args = parser.parse_args()

    current, baseline = load(args.current), load(args.baseline)
    failures = []
    print("bench_diff: %s vs %s (tolerance %.1fx)"
          % (args.current, args.baseline, args.tolerance))
    if "benchmarks" in baseline:
        diff_google_benchmark(current, baseline, args.tolerance, failures)
    else:
        diff_custom(current, baseline, args.tolerance, failures)

    if failures:
        print("bench_diff: %d regression(s):" % len(failures))
        for f in failures:
            print("  " + f)
        return 1
    print("bench_diff: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
