#!/usr/bin/env python3
"""Contract lint: repo-specific invariants clang-tidy cannot express.

Checks (each line-anchored, reported as file:line):

  threads         Raw std::thread construction is allowed only in the
                  modules that own worker lifecycles (util/, stream/,
                  incremental/) — everything else must ride ThreadPool /
                  ParallelFor so shard counts and failure routing stay in
                  one place.

  pool-writer     ValuePool::Intern is allowed only in the relational
                  layer (Tuple/Relation/CSV construct values) — the
                  engines must stay on the read-only side of the
                  single-writer pool contract (value_pool.h) and reach
                  foreign pools through PoolBridge.

  status-discard  A bare statement calling a method this repo declares
                  as returning Status/Result must not drop the verdict:
                  wrap it in CERTFIX_RETURN_IF_ERROR / CERTFIX_RETURN_NOT_OK,
                  assign it, or cast to (void) deliberately.

  include-guard   Headers under src/ use CERTFIX_<PATH>_H_ guards.

  idkey-map       std::unordered_map<IdKey, ...> is allowed only inside
                  the index implementations (flat_key_index.{h,cc} and
                  the legacy key_index.h) — hot-path code defaults to
                  FlatIdTable/FlatKeyIndex; cold build-side groupings
                  carry an explicit waiver.

  stderr          Raw std::cerr / fprintf(stderr, ...) is allowed only
                  in util/logging.cc (the single sink) and src/tools/
                  (CLI commands write user-facing errors to the stream
                  they were handed) — library code must go through
                  CERTFIX_LOG so lines stay whole under concurrency and
                  tests can capture them via SetLogSink.

A line is waived with `// contract-lint: allow(<check>) <reason>`; the
reason is mandatory. For idkey-map only, the waiver may sit on the line
immediately before or after the declaration (multi-line template
declarations rarely fit a trailing comment).

Usage: tools/contract_lint.py [repo_root]   (exit 1 on any finding)
"""

import os
import re
import sys

THREAD_ALLOWED = ("src/util/", "src/stream/", "src/incremental/")
POOL_ALLOWED = ("src/relational/",)
IDKEY_ALLOWED = ("src/relational/flat_key_index.h",
                 "src/relational/flat_key_index.cc",
                 "src/relational/key_index.h")
STDERR_ALLOWED = ("src/util/logging.cc", "src/tools/")

WAIVER = re.compile(r"//\s*contract-lint:\s*allow\(([\w-]+)\)\s+\S")
LINE_COMMENT = re.compile(r"//.*$")

THREAD_USE = re.compile(r"\bstd::thread\b(?!\s*::hardware_concurrency)")
POOL_WRITE = re.compile(r"(?:->|\.)\s*Intern\s*\(")
IDKEY_MAP = re.compile(r"\bstd::unordered_map<\s*IdKey\b")
STDERR_USE = re.compile(r"\bstd::cerr\b|\bfprintf\s*\(\s*stderr\b")

STATUS_DECL = re.compile(
    r"^\s*(?:virtual\s+)?(?:Status|Result<[^;=]*>)\s+(\w+)\s*\(")
# Any other method declaration: a name declared somewhere with a
# non-Status return type is ambiguous (e.g. AttrSet::Add is void while
# RuleSet::Add returns Status) and is skipped rather than guessed at.
OTHER_DECL = re.compile(
    r"^\s*(?:virtual\s+)?(?:void|bool|int|unsigned|float|double|char|auto|"
    r"size_t|uint\d+_t|int\d+_t|AttrId|AttrSet|Tuple|Value|Relation|"
    r"std::[\w:<>,*&\s]+?|[A-Z]\w+(?:<[^;=()]*>)?[*&]?)\s+(\w+)\s*\(")
# A whole statement of the form `expr.Method(...);` / `expr->Method(...);`
# with no assignment, return, or macro wrapper on the line.
BARE_CALL = re.compile(
    r"^\s*(?:[\w\]\[.>*-]+(?:->|\.))?(\w+)\s*\(.*\)\s*;\s*$")
GUARDED = re.compile(
    r"^\s*(?:return|CERTFIX_\w+\(|ASSERT_|EXPECT_|CHECK|assert\(|\(void\)|"
    r"if\b|while\b|for\b|switch\b)")

# Control-flow / allocation words BARE_CALL would otherwise "call".
NOT_METHODS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch",
    "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
    "defined", "alignof", "decltype", "emplace_back", "push_back",
}


def harvest_status_methods(root):
    """Names declared in src/ headers as returning Status/Result — minus
    any name that is *also* declared with some other return type (e.g.
    AttrSet::Add is void while RuleSet::Add returns Status): ambiguous
    names would make every flag a coin toss, so they are skipped.
    """
    names = set()
    ambiguous = set()
    for path in walk_sources(root, exts=(".h",)):
        with open(path, encoding="utf-8") as f:
            for line in f:
                m = STATUS_DECL.match(line)
                if m:
                    names.add(m.group(1))
                    continue
                m = OTHER_DECL.match(line)
                if m:
                    ambiguous.add(m.group(1))
    names -= ambiguous
    # Constructors of Status/Result and tiny accessors that merely *build*
    # a status are not "checkable calls".
    for benign in ("Status", "OK", "ok", "status", "Error"):
        names.discard(benign)
    return names


def walk_sources(root, exts=(".h", ".cc")):
    for base, dirs, files in os.walk(os.path.join(root, "src")):
        dirs[:] = [d for d in dirs if not d.startswith(".")]
        for name in sorted(files):
            if name.endswith(exts):
                yield os.path.join(base, name)


def rel(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


def expected_guard(relpath):
    stem = relpath[len("src/"):]
    token = re.sub(r"[^A-Za-z0-9]", "_", stem.rsplit(".", 1)[0]).upper()
    return "CERTFIX_%s_H_" % token


def waived(line, check):
    m = WAIVER.search(line)
    return bool(m and m.group(1) == check)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    status_methods = harvest_status_methods(root)
    findings = []

    for path in walk_sources(root):
        relpath = rel(root, path)
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()

        in_block_comment = False
        # Last character of the previous code line: a statement can only
        # *start* after ';', '{', '}' or ':' (else this line continues a
        # split expression such as a two-line assignment or macro call).
        prev_end = ";"
        for lineno, raw in enumerate(lines, 1):
            line = raw
            if in_block_comment:
                if "*/" in line:
                    line = line.split("*/", 1)[1]
                    in_block_comment = False
                else:
                    continue
            if "/*" in line and "*/" not in line:
                in_block_comment = True
                line = line.split("/*", 1)[0]
            code = LINE_COMMENT.sub("", line)
            if not code.strip():
                continue
            statement_start = prev_end in ";{}:"
            prev_end = code.strip()[-1]

            if (THREAD_USE.search(code)
                    and not relpath.startswith(THREAD_ALLOWED)
                    and not waived(raw, "threads")):
                findings.append(
                    (relpath, lineno,
                     "threads: raw std::thread outside util/stream/"
                     "incremental — use ThreadPool/ParallelFor"))

            if (IDKEY_MAP.search(code)
                    and relpath not in IDKEY_ALLOWED
                    and not waived(raw, "idkey-map")
                    and not (lineno >= 2
                             and waived(lines[lineno - 2], "idkey-map"))
                    and not (lineno < len(lines)
                             and waived(lines[lineno], "idkey-map"))):
                findings.append(
                    (relpath, lineno,
                     "idkey-map: std::unordered_map<IdKey, ...> outside the "
                     "index implementations — use FlatIdTable/FlatKeyIndex "
                     "(relational/flat_key_index.h) or waive with a reason"))

            if (STDERR_USE.search(code)
                    and not relpath.startswith(STDERR_ALLOWED)
                    and not waived(raw, "stderr")):
                findings.append(
                    (relpath, lineno,
                     "stderr: raw std::cerr/fprintf(stderr) outside "
                     "util/logging.cc and src/tools — use CERTFIX_LOG "
                     "(util/logging.h)"))

            if (POOL_WRITE.search(code)
                    and not relpath.startswith(POOL_ALLOWED)
                    and not waived(raw, "pool-writer")):
                findings.append(
                    (relpath, lineno,
                     "pool-writer: ValuePool::Intern outside src/relational "
                     "violates the single-writer contract — go through "
                     "Tuple::Set/PoolBridge"))

            if statement_start and not GUARDED.match(code):
                m = BARE_CALL.match(code)
                if (m and m.group(1) in status_methods
                        and m.group(1) not in NOT_METHODS
                        and "=" not in code.split(m.group(1))[0]
                        and not waived(raw, "status-discard")):
                    findings.append(
                        (relpath, lineno,
                         "status-discard: result of '%s' is dropped — wrap "
                         "in CERTFIX_RETURN_IF_ERROR or cast to (void)"
                         % m.group(1)))

        if relpath.endswith(".h"):
            guard = expected_guard(relpath)
            text = "\n".join(lines)
            if ("#ifndef %s" % guard not in text
                    or "#define %s" % guard not in text):
                if not any(waived(l, "include-guard") for l in lines[:5]):
                    findings.append(
                        (relpath, 1,
                         "include-guard: expected %s" % guard))

    for relpath, lineno, message in findings:
        print("%s:%d: %s" % (relpath, lineno, message))
    if findings:
        print("contract_lint: %d finding(s)" % len(findings))
        return 1
    print("contract_lint: clean (%d status-returning methods tracked)"
          % len(status_methods))
    return 0


if __name__ == "__main__":
    sys.exit(main())
