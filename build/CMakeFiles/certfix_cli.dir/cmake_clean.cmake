file(REMOVE_RECURSE
  "CMakeFiles/certfix_cli.dir/examples/certfix_cli.cpp.o"
  "CMakeFiles/certfix_cli.dir/examples/certfix_cli.cpp.o.d"
  "examples/certfix_cli"
  "examples/certfix_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certfix_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
