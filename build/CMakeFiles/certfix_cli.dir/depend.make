# Empty dependencies file for certfix_cli.
# This may be replaced when dependencies are built.
