file(REMOVE_RECURSE
  "CMakeFiles/bench_regions_table.dir/bench/bench_regions_table.cc.o"
  "CMakeFiles/bench_regions_table.dir/bench/bench_regions_table.cc.o.d"
  "bench/bench_regions_table"
  "bench/bench_regions_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regions_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
