# Empty dependencies file for bench_regions_table.
# This may be replaced when dependencies are built.
