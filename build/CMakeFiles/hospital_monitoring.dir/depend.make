# Empty dependencies file for hospital_monitoring.
# This may be replaced when dependencies are built.
