file(REMOVE_RECURSE
  "CMakeFiles/hospital_monitoring.dir/examples/hospital_monitoring.cpp.o"
  "CMakeFiles/hospital_monitoring.dir/examples/hospital_monitoring.cpp.o.d"
  "examples/hospital_monitoring"
  "examples/hospital_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
