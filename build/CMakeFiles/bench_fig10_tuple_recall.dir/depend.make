# Empty dependencies file for bench_fig10_tuple_recall.
# This may be replaced when dependencies are built.
