file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tuple_recall.dir/bench/bench_fig10_tuple_recall.cc.o"
  "CMakeFiles/bench_fig10_tuple_recall.dir/bench/bench_fig10_tuple_recall.cc.o.d"
  "bench/bench_fig10_tuple_recall"
  "bench/bench_fig10_tuple_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tuple_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
