file(REMOVE_RECURSE
  "CMakeFiles/dblp_enrichment.dir/examples/dblp_enrichment.cpp.o"
  "CMakeFiles/dblp_enrichment.dir/examples/dblp_enrichment.cpp.o.d"
  "examples/dblp_enrichment"
  "examples/dblp_enrichment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_enrichment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
