# Empty dependencies file for dblp_enrichment.
# This may be replaced when dependencies are built.
