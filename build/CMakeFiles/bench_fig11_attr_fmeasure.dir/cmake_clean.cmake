file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_attr_fmeasure.dir/bench/bench_fig11_attr_fmeasure.cc.o"
  "CMakeFiles/bench_fig11_attr_fmeasure.dir/bench/bench_fig11_attr_fmeasure.cc.o.d"
  "bench/bench_fig11_attr_fmeasure"
  "bench/bench_fig11_attr_fmeasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_attr_fmeasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
