# Empty dependencies file for bench_fig11_attr_fmeasure.
# This may be replaced when dependencies are built.
