file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_repair.dir/bench/bench_parallel_repair.cc.o"
  "CMakeFiles/bench_parallel_repair.dir/bench/bench_parallel_repair.cc.o.d"
  "bench/bench_parallel_repair"
  "bench/bench_parallel_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
