# Empty dependencies file for bench_parallel_repair.
# This may be replaced when dependencies are built.
