file(REMOVE_RECURSE
  "CMakeFiles/bench_initial_suggestion.dir/bench/bench_initial_suggestion.cc.o"
  "CMakeFiles/bench_initial_suggestion.dir/bench/bench_initial_suggestion.cc.o.d"
  "bench/bench_initial_suggestion"
  "bench/bench_initial_suggestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_initial_suggestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
