# Empty dependencies file for bench_initial_suggestion.
# This may be replaced when dependencies are built.
