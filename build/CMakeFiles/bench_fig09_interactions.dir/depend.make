# Empty dependencies file for bench_fig09_interactions.
# This may be replaced when dependencies are built.
