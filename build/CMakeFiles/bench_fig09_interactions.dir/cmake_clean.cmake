file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_interactions.dir/bench/bench_fig09_interactions.cc.o"
  "CMakeFiles/bench_fig09_interactions.dir/bench/bench_fig09_interactions.cc.o.d"
  "bench/bench_fig09_interactions"
  "bench/bench_fig09_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
