# Empty dependencies file for rule_analysis.
# This may be replaced when dependencies are built.
