file(REMOVE_RECURSE
  "CMakeFiles/rule_analysis.dir/examples/rule_analysis.cpp.o"
  "CMakeFiles/rule_analysis.dir/examples/rule_analysis.cpp.o.d"
  "examples/rule_analysis"
  "examples/rule_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
