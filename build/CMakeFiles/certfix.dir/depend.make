# Empty dependencies file for certfix.
# This may be replaced when dependencies are built.
