
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfd/cfd.cc" "CMakeFiles/certfix.dir/src/cfd/cfd.cc.o" "gcc" "CMakeFiles/certfix.dir/src/cfd/cfd.cc.o.d"
  "/root/repo/src/cfd/violation.cc" "CMakeFiles/certfix.dir/src/cfd/violation.cc.o" "gcc" "CMakeFiles/certfix.dir/src/cfd/violation.cc.o.d"
  "/root/repo/src/core/applicable_rules.cc" "CMakeFiles/certfix.dir/src/core/applicable_rules.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/applicable_rules.cc.o.d"
  "/root/repo/src/core/batch_repair.cc" "CMakeFiles/certfix.dir/src/core/batch_repair.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/batch_repair.cc.o.d"
  "/root/repo/src/core/certain_fix.cc" "CMakeFiles/certfix.dir/src/core/certain_fix.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/certain_fix.cc.o.d"
  "/root/repo/src/core/consistency.cc" "CMakeFiles/certfix.dir/src/core/consistency.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/consistency.cc.o.d"
  "/root/repo/src/core/coverage.cc" "CMakeFiles/certfix.dir/src/core/coverage.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/coverage.cc.o.d"
  "/root/repo/src/core/cregion.cc" "CMakeFiles/certfix.dir/src/core/cregion.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/cregion.cc.o.d"
  "/root/repo/src/core/dependency_graph.cc" "CMakeFiles/certfix.dir/src/core/dependency_graph.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/dependency_graph.cc.o.d"
  "/root/repo/src/core/direct_fix.cc" "CMakeFiles/certfix.dir/src/core/direct_fix.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/direct_fix.cc.o.d"
  "/root/repo/src/core/exhaustive.cc" "CMakeFiles/certfix.dir/src/core/exhaustive.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/exhaustive.cc.o.d"
  "/root/repo/src/core/fix_state.cc" "CMakeFiles/certfix.dir/src/core/fix_state.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/fix_state.cc.o.d"
  "/root/repo/src/core/master_index.cc" "CMakeFiles/certfix.dir/src/core/master_index.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/master_index.cc.o.d"
  "/root/repo/src/core/region.cc" "CMakeFiles/certfix.dir/src/core/region.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/region.cc.o.d"
  "/root/repo/src/core/saturation.cc" "CMakeFiles/certfix.dir/src/core/saturation.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/saturation.cc.o.d"
  "/root/repo/src/core/suggest.cc" "CMakeFiles/certfix.dir/src/core/suggest.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/suggest.cc.o.d"
  "/root/repo/src/core/suggestion_cache.cc" "CMakeFiles/certfix.dir/src/core/suggestion_cache.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/suggestion_cache.cc.o.d"
  "/root/repo/src/core/transfix.cc" "CMakeFiles/certfix.dir/src/core/transfix.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/transfix.cc.o.d"
  "/root/repo/src/core/user.cc" "CMakeFiles/certfix.dir/src/core/user.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/user.cc.o.d"
  "/root/repo/src/core/zproblems.cc" "CMakeFiles/certfix.dir/src/core/zproblems.cc.o" "gcc" "CMakeFiles/certfix.dir/src/core/zproblems.cc.o.d"
  "/root/repo/src/mining/rule_miner.cc" "CMakeFiles/certfix.dir/src/mining/rule_miner.cc.o" "gcc" "CMakeFiles/certfix.dir/src/mining/rule_miner.cc.o.d"
  "/root/repo/src/pattern/pattern_tuple.cc" "CMakeFiles/certfix.dir/src/pattern/pattern_tuple.cc.o" "gcc" "CMakeFiles/certfix.dir/src/pattern/pattern_tuple.cc.o.d"
  "/root/repo/src/pattern/pattern_value.cc" "CMakeFiles/certfix.dir/src/pattern/pattern_value.cc.o" "gcc" "CMakeFiles/certfix.dir/src/pattern/pattern_value.cc.o.d"
  "/root/repo/src/pattern/tableau.cc" "CMakeFiles/certfix.dir/src/pattern/tableau.cc.o" "gcc" "CMakeFiles/certfix.dir/src/pattern/tableau.cc.o.d"
  "/root/repo/src/relational/csv.cc" "CMakeFiles/certfix.dir/src/relational/csv.cc.o" "gcc" "CMakeFiles/certfix.dir/src/relational/csv.cc.o.d"
  "/root/repo/src/relational/key_index.cc" "CMakeFiles/certfix.dir/src/relational/key_index.cc.o" "gcc" "CMakeFiles/certfix.dir/src/relational/key_index.cc.o.d"
  "/root/repo/src/relational/multi_master.cc" "CMakeFiles/certfix.dir/src/relational/multi_master.cc.o" "gcc" "CMakeFiles/certfix.dir/src/relational/multi_master.cc.o.d"
  "/root/repo/src/relational/relation.cc" "CMakeFiles/certfix.dir/src/relational/relation.cc.o" "gcc" "CMakeFiles/certfix.dir/src/relational/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "CMakeFiles/certfix.dir/src/relational/schema.cc.o" "gcc" "CMakeFiles/certfix.dir/src/relational/schema.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "CMakeFiles/certfix.dir/src/relational/tuple.cc.o" "gcc" "CMakeFiles/certfix.dir/src/relational/tuple.cc.o.d"
  "/root/repo/src/relational/value.cc" "CMakeFiles/certfix.dir/src/relational/value.cc.o" "gcc" "CMakeFiles/certfix.dir/src/relational/value.cc.o.d"
  "/root/repo/src/repair/cost_model.cc" "CMakeFiles/certfix.dir/src/repair/cost_model.cc.o" "gcc" "CMakeFiles/certfix.dir/src/repair/cost_model.cc.o.d"
  "/root/repo/src/repair/equivalence.cc" "CMakeFiles/certfix.dir/src/repair/equivalence.cc.o" "gcc" "CMakeFiles/certfix.dir/src/repair/equivalence.cc.o.d"
  "/root/repo/src/repair/increp.cc" "CMakeFiles/certfix.dir/src/repair/increp.cc.o" "gcc" "CMakeFiles/certfix.dir/src/repair/increp.cc.o.d"
  "/root/repo/src/rules/editing_rule.cc" "CMakeFiles/certfix.dir/src/rules/editing_rule.cc.o" "gcc" "CMakeFiles/certfix.dir/src/rules/editing_rule.cc.o.d"
  "/root/repo/src/rules/rule_parser.cc" "CMakeFiles/certfix.dir/src/rules/rule_parser.cc.o" "gcc" "CMakeFiles/certfix.dir/src/rules/rule_parser.cc.o.d"
  "/root/repo/src/rules/rule_set.cc" "CMakeFiles/certfix.dir/src/rules/rule_set.cc.o" "gcc" "CMakeFiles/certfix.dir/src/rules/rule_set.cc.o.d"
  "/root/repo/src/solver/reductions.cc" "CMakeFiles/certfix.dir/src/solver/reductions.cc.o" "gcc" "CMakeFiles/certfix.dir/src/solver/reductions.cc.o.d"
  "/root/repo/src/solver/sat.cc" "CMakeFiles/certfix.dir/src/solver/sat.cc.o" "gcc" "CMakeFiles/certfix.dir/src/solver/sat.cc.o.d"
  "/root/repo/src/tools/cli.cc" "CMakeFiles/certfix.dir/src/tools/cli.cc.o" "gcc" "CMakeFiles/certfix.dir/src/tools/cli.cc.o.d"
  "/root/repo/src/util/edit_distance.cc" "CMakeFiles/certfix.dir/src/util/edit_distance.cc.o" "gcc" "CMakeFiles/certfix.dir/src/util/edit_distance.cc.o.d"
  "/root/repo/src/util/logging.cc" "CMakeFiles/certfix.dir/src/util/logging.cc.o" "gcc" "CMakeFiles/certfix.dir/src/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "CMakeFiles/certfix.dir/src/util/random.cc.o" "gcc" "CMakeFiles/certfix.dir/src/util/random.cc.o.d"
  "/root/repo/src/util/string_util.cc" "CMakeFiles/certfix.dir/src/util/string_util.cc.o" "gcc" "CMakeFiles/certfix.dir/src/util/string_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/certfix.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/certfix.dir/src/util/thread_pool.cc.o.d"
  "/root/repo/src/workload/dblp.cc" "CMakeFiles/certfix.dir/src/workload/dblp.cc.o" "gcc" "CMakeFiles/certfix.dir/src/workload/dblp.cc.o.d"
  "/root/repo/src/workload/dirty_gen.cc" "CMakeFiles/certfix.dir/src/workload/dirty_gen.cc.o" "gcc" "CMakeFiles/certfix.dir/src/workload/dirty_gen.cc.o.d"
  "/root/repo/src/workload/experiment.cc" "CMakeFiles/certfix.dir/src/workload/experiment.cc.o" "gcc" "CMakeFiles/certfix.dir/src/workload/experiment.cc.o.d"
  "/root/repo/src/workload/hosp.cc" "CMakeFiles/certfix.dir/src/workload/hosp.cc.o" "gcc" "CMakeFiles/certfix.dir/src/workload/hosp.cc.o.d"
  "/root/repo/src/workload/metrics.cc" "CMakeFiles/certfix.dir/src/workload/metrics.cc.o" "gcc" "CMakeFiles/certfix.dir/src/workload/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
