file(REMOVE_RECURSE
  "libcertfix.a"
)
