# Empty dependencies file for suggestion_cache_test.
# This may be replaced when dependencies are built.
