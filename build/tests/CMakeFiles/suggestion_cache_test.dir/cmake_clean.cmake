file(REMOVE_RECURSE
  "CMakeFiles/suggestion_cache_test.dir/suggestion_cache_test.cc.o"
  "CMakeFiles/suggestion_cache_test.dir/suggestion_cache_test.cc.o.d"
  "suggestion_cache_test"
  "suggestion_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suggestion_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
