# Empty dependencies file for batch_repair_test.
# This may be replaced when dependencies are built.
