file(REMOVE_RECURSE
  "CMakeFiles/batch_repair_test.dir/batch_repair_test.cc.o"
  "CMakeFiles/batch_repair_test.dir/batch_repair_test.cc.o.d"
  "batch_repair_test"
  "batch_repair_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
