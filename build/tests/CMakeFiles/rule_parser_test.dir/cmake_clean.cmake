file(REMOVE_RECURSE
  "CMakeFiles/rule_parser_test.dir/rule_parser_test.cc.o"
  "CMakeFiles/rule_parser_test.dir/rule_parser_test.cc.o.d"
  "rule_parser_test"
  "rule_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
