file(REMOVE_RECURSE
  "CMakeFiles/fix_state_test.dir/fix_state_test.cc.o"
  "CMakeFiles/fix_state_test.dir/fix_state_test.cc.o.d"
  "fix_state_test"
  "fix_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
