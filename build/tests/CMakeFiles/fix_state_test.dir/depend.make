# Empty dependencies file for fix_state_test.
# This may be replaced when dependencies are built.
