# Empty dependencies file for key_index_test.
# This may be replaced when dependencies are built.
