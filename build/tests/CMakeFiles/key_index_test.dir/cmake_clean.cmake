file(REMOVE_RECURSE
  "CMakeFiles/key_index_test.dir/key_index_test.cc.o"
  "CMakeFiles/key_index_test.dir/key_index_test.cc.o.d"
  "key_index_test"
  "key_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
