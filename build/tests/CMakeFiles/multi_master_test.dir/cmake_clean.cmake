file(REMOVE_RECURSE
  "CMakeFiles/multi_master_test.dir/multi_master_test.cc.o"
  "CMakeFiles/multi_master_test.dir/multi_master_test.cc.o.d"
  "multi_master_test"
  "multi_master_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_master_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
