# Empty dependencies file for multi_master_test.
# This may be replaced when dependencies are built.
