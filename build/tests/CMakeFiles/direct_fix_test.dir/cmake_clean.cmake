file(REMOVE_RECURSE
  "CMakeFiles/direct_fix_test.dir/direct_fix_test.cc.o"
  "CMakeFiles/direct_fix_test.dir/direct_fix_test.cc.o.d"
  "direct_fix_test"
  "direct_fix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/direct_fix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
