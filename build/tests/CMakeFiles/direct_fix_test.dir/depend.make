# Empty dependencies file for direct_fix_test.
# This may be replaced when dependencies are built.
