file(REMOVE_RECURSE
  "CMakeFiles/suggestion_property_test.dir/suggestion_property_test.cc.o"
  "CMakeFiles/suggestion_property_test.dir/suggestion_property_test.cc.o.d"
  "suggestion_property_test"
  "suggestion_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suggestion_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
