# Empty dependencies file for suggestion_property_test.
# This may be replaced when dependencies are built.
