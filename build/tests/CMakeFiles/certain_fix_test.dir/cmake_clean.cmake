file(REMOVE_RECURSE
  "CMakeFiles/certain_fix_test.dir/certain_fix_test.cc.o"
  "CMakeFiles/certain_fix_test.dir/certain_fix_test.cc.o.d"
  "certain_fix_test"
  "certain_fix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certain_fix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
