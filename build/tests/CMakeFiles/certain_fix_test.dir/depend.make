# Empty dependencies file for certain_fix_test.
# This may be replaced when dependencies are built.
