# Empty dependencies file for saturation_test.
# This may be replaced when dependencies are built.
