file(REMOVE_RECURSE
  "CMakeFiles/saturation_test.dir/saturation_test.cc.o"
  "CMakeFiles/saturation_test.dir/saturation_test.cc.o.d"
  "saturation_test"
  "saturation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saturation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
