file(REMOVE_RECURSE
  "CMakeFiles/rule_miner_test.dir/rule_miner_test.cc.o"
  "CMakeFiles/rule_miner_test.dir/rule_miner_test.cc.o.d"
  "rule_miner_test"
  "rule_miner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
