# Empty dependencies file for rule_miner_test.
# This may be replaced when dependencies are built.
