# Empty dependencies file for zproblems_test.
# This may be replaced when dependencies are built.
