file(REMOVE_RECURSE
  "CMakeFiles/zproblems_test.dir/zproblems_test.cc.o"
  "CMakeFiles/zproblems_test.dir/zproblems_test.cc.o.d"
  "zproblems_test"
  "zproblems_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zproblems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
