file(REMOVE_RECURSE
  "CMakeFiles/transfix_test.dir/transfix_test.cc.o"
  "CMakeFiles/transfix_test.dir/transfix_test.cc.o.d"
  "transfix_test"
  "transfix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
