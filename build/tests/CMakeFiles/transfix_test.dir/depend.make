# Empty dependencies file for transfix_test.
# This may be replaced when dependencies are built.
