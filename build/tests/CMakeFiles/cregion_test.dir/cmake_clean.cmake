file(REMOVE_RECURSE
  "CMakeFiles/cregion_test.dir/cregion_test.cc.o"
  "CMakeFiles/cregion_test.dir/cregion_test.cc.o.d"
  "cregion_test"
  "cregion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cregion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
