# Empty dependencies file for cregion_test.
# This may be replaced when dependencies are built.
