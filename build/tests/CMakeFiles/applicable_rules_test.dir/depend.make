# Empty dependencies file for applicable_rules_test.
# This may be replaced when dependencies are built.
