file(REMOVE_RECURSE
  "CMakeFiles/applicable_rules_test.dir/applicable_rules_test.cc.o"
  "CMakeFiles/applicable_rules_test.dir/applicable_rules_test.cc.o.d"
  "applicable_rules_test"
  "applicable_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/applicable_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
