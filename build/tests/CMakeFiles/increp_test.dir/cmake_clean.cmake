file(REMOVE_RECURSE
  "CMakeFiles/increp_test.dir/increp_test.cc.o"
  "CMakeFiles/increp_test.dir/increp_test.cc.o.d"
  "increp_test"
  "increp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/increp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
