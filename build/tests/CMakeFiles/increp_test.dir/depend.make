# Empty dependencies file for increp_test.
# This may be replaced when dependencies are built.
