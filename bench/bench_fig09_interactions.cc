/// \file bench_fig09_interactions.cc
/// \brief Fig. 9: recall vs the number of user interactions at default
/// parameters (d% = 30, |Dm| = 10K, n% = 20).
///
///  (a) tuple-level recall_t per round;
///  (b) attribute-level recall_a per round.
///
/// Expected shape: recall_t reaches 1 within ~3-4 rounds for hosp and ~3
/// for dblp; recall_a plateaus once only user-only attributes remain.

#include "bench_util.h"

using namespace certfix;
using namespace certfix::bench;

int main() {
  PrintHeader("Fig. 9: recall vs #interactions", "Sect. 6 Exp-1(3)");
  Defaults defaults;

  for (bool hosp : {true, false}) {
    WorkloadSetup w =
        hosp ? MakeHosp(defaults.dm_size) : MakeDblp(defaults.dm_size);
    CertainFixEngine engine(w.rules, w.master, CertainFixOptions{});
    ExperimentConfig config;
    config.num_tuples = defaults.num_tuples;
    config.report_rounds = 5;
    config.gen.duplicate_rate = defaults.duplicate_rate;
    config.gen.noise_rate = defaults.noise_rate;
    config.gen.seed = 13;
    ExperimentResult result =
        RunInteractiveExperiment(&engine, w.master, w.non_master, config);

    std::cout << "[" << w.name << "] rounds k = 1..5\n";
    std::cout << "  recall_t:";
    for (const RoundMetrics& m : result.per_round) {
      std::cout << "  " << std::fixed << std::setprecision(3) << m.recall_t;
    }
    std::cout << "\n  recall_a:";
    for (const RoundMetrics& m : result.per_round) {
      std::cout << "  " << std::fixed << std::setprecision(3) << m.recall_a;
    }
    std::cout << "\n  avg interactions per tuple: " << std::setprecision(2)
              << result.avg_rounds << "\n\n";
  }
  std::cout << "paper shape: hosp fixed within <=4 rounds (93% by round "
               "3), dblp within <=3; recall_a >= 0.5 of fixable errors by "
               "round 2.\n";
  return 0;
}
