/// \file bench_fig10_tuple_recall.cc
/// \brief Fig. 10 (a-f): tuple-level recall after k rounds, varying one of
/// the duplicate rate d%, the master size |Dm|, and the noise rate n%
/// while fixing the other two at defaults, for hosp and dblp.
///
/// Expected shapes (Sect. 6 Exp-1(4)-(6)):
///   - recall increases with d% (and k=1 recall tracks d% directly);
///   - recall at k=1 is insensitive to |Dm|, later rounds improve with it;
///   - recall is insensitive to n% at every round.

#include "bench_util.h"

using namespace certfix;
using namespace certfix::bench;

namespace {

ExperimentResult RunOne(const WorkloadSetup& w, double d, double n,
                        size_t num_tuples) {
  CertainFixEngine engine(w.rules, w.master, CertainFixOptions{});
  ExperimentConfig config;
  config.num_tuples = num_tuples;
  config.report_rounds = 4;
  config.gen.duplicate_rate = d;
  config.gen.noise_rate = n;
  config.gen.seed = 23;
  return RunInteractiveExperiment(const_cast<CertainFixEngine*>(&engine),
                                  w.master, w.non_master, config);
}

}  // namespace

int main() {
  PrintHeader("Fig. 10: tuple-level recall sweeps", "Sect. 6 Exp-1(4)-(6)");
  Defaults defaults;
  size_t tuples = Scaled(3000);

  for (bool hosp : {true, false}) {
    const char* name = hosp ? "hosp" : "dblp";

    // Panels (a)/(d): vary d%.
    std::cout << "[" << name << "] varying d% (columns: rounds k=1..4)\n";
    {
      WorkloadSetup w =
          hosp ? MakeHosp(defaults.dm_size) : MakeDblp(defaults.dm_size);
      for (double d : {0.1, 0.2, 0.3, 0.4, 0.5}) {
        ExperimentResult r = RunOne(w, d, defaults.noise_rate, tuples);
        std::cout << "  d%=" << static_cast<int>(d * 100) << " :";
        PrintRoundSeries("", r, /*tuple_level=*/true);
      }
    }

    // Panels (b)/(e): vary |Dm|.
    std::cout << "[" << name << "] varying |Dm|\n";
    for (size_t dm : {Scaled(5000), Scaled(10000), Scaled(15000),
                      Scaled(20000), Scaled(25000)}) {
      WorkloadSetup w = hosp ? MakeHosp(dm) : MakeDblp(dm);
      ExperimentResult r =
          RunOne(w, defaults.duplicate_rate, defaults.noise_rate, tuples);
      std::cout << "  |Dm|=" << dm << " :";
      PrintRoundSeries("", r, /*tuple_level=*/true);
    }

    // Panels (c)/(f): vary n%.
    std::cout << "[" << name << "] varying n%\n";
    {
      WorkloadSetup w =
          hosp ? MakeHosp(defaults.dm_size) : MakeDblp(defaults.dm_size);
      for (double n : {0.1, 0.2, 0.3, 0.4, 0.5}) {
        ExperimentResult r = RunOne(w, defaults.duplicate_rate, n, tuples);
        std::cout << "  n%=" << static_cast<int>(n * 100) << " :";
        PrintRoundSeries("", r, /*tuple_level=*/true);
      }
    }
    std::cout << "\n";
  }
  std::cout << "paper shapes: k=1 recall == d%; larger |Dm| helps later "
               "rounds; n% has no visible effect.\n";
  return 0;
}
