/// \file bench_micro.cc
/// \brief google-benchmark micro-benchmarks for the core operations: rule
/// application, master lookup, batch saturation, the exact unique-fix
/// check, TransFix, applicable-rule derivation, suggestion generation, and
/// one IncRep pass. These back the complexity claims of Sects. 4-5
/// (TransFix O(|Sigma|^2), Suggest O(|Sigma|^2 |Dm| log |Dm|)).

#include <benchmark/benchmark.h>

#include "core/certain_fix.h"
#include "repair/increp.h"
#include "workload/dirty_gen.h"
#include "workload/hosp.h"

namespace certfix {
namespace {

struct Fixture {
  SchemaPtr schema;
  RuleSet rules;
  Relation master;
  std::unique_ptr<MasterIndex> index;
  std::unique_ptr<Saturator> sat;
  std::unique_ptr<DependencyGraph> graph;
  std::unique_ptr<TransFix> transfix;
  std::unique_ptr<Suggester> suggester;
  Tuple probe;
  AttrSet z0;

  explicit Fixture(size_t dm_size) {
    schema = HospWorkload::MakeSchema();
    rules = HospWorkload::MakeRules(schema);
    Rng rng(42);
    master = HospWorkload::MakeMaster(schema, dm_size, &rng);
    index = std::make_unique<MasterIndex>(rules, master);
    sat = std::make_unique<Saturator>(rules, master, *index);
    graph = std::make_unique<DependencyGraph>(rules);
    transfix = std::make_unique<TransFix>(rules, master, *graph, *index);
    suggester = std::make_unique<Suggester>(rules, master);
    probe = master.at(master.size() / 2);
    z0.Add(*schema->IndexOf("id"));
    z0.Add(*schema->IndexOf("mCode"));
  }
};

Fixture& SharedFixture(size_t dm_size) {
  static std::map<size_t, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(dm_size);
  if (it == cache.end()) {
    it = cache.emplace(dm_size, std::make_unique<Fixture>(dm_size)).first;
  }
  return *it->second;
}

void BM_RuleApplication(benchmark::State& state) {
  Fixture& f = SharedFixture(1000);
  const EditingRule& rule = f.rules.at(0);
  const Tuple& tm = f.master.at(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule.AppliesTo(f.probe, tm));
  }
}
BENCHMARK(BM_RuleApplication);

void BM_MasterLookup(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index->Candidates(0, f.probe));
  }
}
BENCHMARK(BM_MasterLookup)->Arg(1000)->Arg(10000);

void BM_Saturate(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sat->Saturate(f.probe, f.z0));
  }
}
BENCHMARK(BM_Saturate)->Arg(1000)->Arg(10000);

void BM_CheckUniqueFix(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sat->CheckUniqueFix(f.probe, f.z0));
  }
}
BENCHMARK(BM_CheckUniqueFix)->Arg(1000)->Arg(10000);

void BM_TransFix(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.transfix->Run(f.probe, f.z0));
  }
}
BENCHMARK(BM_TransFix)->Arg(1000)->Arg(10000);

void BM_DeriveApplicableRules(benchmark::State& state) {
  Fixture& f = SharedFixture(1000);
  PartialMasterIndexCache cache(f.master);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DeriveApplicableRules(f.rules, f.master, &cache, f.probe, f.z0));
  }
}
BENCHMARK(BM_DeriveApplicableRules);

void BM_Suggest(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.suggester->Suggest(f.probe, f.z0));
  }
}
BENCHMARK(BM_Suggest)->Arg(1000)->Arg(10000);

void BM_DependencyGraphBuild(benchmark::State& state) {
  Fixture& f = SharedFixture(1000);
  for (auto _ : state) {
    DependencyGraph graph(f.rules);
    benchmark::DoNotOptimize(graph.num_nodes());
  }
}
BENCHMARK(BM_DependencyGraphBuild);

void BM_RegionPrecomputation(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RegionFinder finder(*f.sat);
    CRegionOptions opts;
    opts.trials = 8;
    opts.sample_masters = 16;
    benchmark::DoNotOptimize(finder.ComputeCertainRegions(opts));
  }
}
BENCHMARK(BM_RegionPrecomputation)->Arg(1000);

void BM_IncRepPass(benchmark::State& state) {
  Fixture& f = SharedFixture(1000);
  CfdSet cfds = HospWorkload::MakeCfdsFromMaster(f.schema, f.master, 200);
  Rng rng2(7);
  Relation non_master =
      HospWorkload::MakeMaster(f.schema, 500, &rng2, 1000000);
  DirtyGenOptions gen_options;
  gen_options.seed = 3;
  DirtyGenerator gen(f.master, non_master, gen_options);
  Relation dirty(f.schema);
  for (const DirtyPair& p : gen.Generate(200)) {
    Status st = dirty.Append(p.dirty);
    (void)st;
  }
  IncRep increp(cfds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(increp.Repair(dirty));
  }
}
BENCHMARK(BM_IncRepPass);

}  // namespace
}  // namespace certfix

BENCHMARK_MAIN();
