/// \file bench_micro.cc
/// \brief google-benchmark micro-benchmarks for the core operations: rule
/// application, master lookup, batch saturation, the exact unique-fix
/// check, TransFix, applicable-rule derivation, suggestion generation, and
/// one IncRep pass. These back the complexity claims of Sects. 4-5
/// (TransFix O(|Sigma|^2), Suggest O(|Sigma|^2 |Dm| log |Dm|)).
///
/// The Interned* / StringKey* group measures the storage layer itself:
/// id-keyed index probes (ValuePool interning) against the legacy
/// rendered-string keys they replaced. Machine-readable output:
///   bench_micro --benchmark_out=BENCH_micro.json --benchmark_out_format=json
/// (the CI release job publishes BENCH_micro.json as an artifact).

#include <benchmark/benchmark.h>

#include <string>
#include <unordered_map>

#include "core/certain_fix.h"
#include "core/repair_memo.h"
#include "core/repair_tuple.h"
#include "relational/flat_key_index.h"
#include "repair/increp.h"
#include "workload/dirty_gen.h"
#include "workload/hosp.h"

namespace certfix {
namespace {

struct Fixture {
  SchemaPtr schema;
  RuleSet rules;
  Relation master;
  std::unique_ptr<MasterIndex> index;      ///< flat (the default)
  std::unique_ptr<MasterIndex> index_map;  ///< legacy map, the A/B oracle
  std::unique_ptr<Saturator> sat;
  std::unique_ptr<DependencyGraph> graph;
  std::unique_ptr<TransFix> transfix;
  std::unique_ptr<Suggester> suggester;
  Tuple probe;
  AttrSet z0;

  explicit Fixture(size_t dm_size) {
    schema = HospWorkload::MakeSchema();
    rules = HospWorkload::MakeRules(schema);
    Rng rng(42);
    master = HospWorkload::MakeMaster(schema, dm_size, &rng);
    index = std::make_unique<MasterIndex>(rules, master, IndexKind::kFlat);
    index_map = std::make_unique<MasterIndex>(rules, master, IndexKind::kMap);
    sat = std::make_unique<Saturator>(rules, master, *index);
    graph = std::make_unique<DependencyGraph>(rules);
    transfix = std::make_unique<TransFix>(rules, master, *graph, *index);
    suggester = std::make_unique<Suggester>(rules, master);
    probe = master.at(master.size() / 2);
    z0.Add(*schema->IndexOf("id"));
    z0.Add(*schema->IndexOf("mCode"));
  }
};

Fixture& SharedFixture(size_t dm_size) {
  static std::map<size_t, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(dm_size);
  if (it == cache.end()) {
    it = cache.emplace(dm_size, std::make_unique<Fixture>(dm_size)).first;
  }
  return *it->second;
}

void BM_RuleApplication(benchmark::State& state) {
  Fixture& f = SharedFixture(1000);
  const EditingRule& rule = f.rules.at(0);
  const Tuple& tm = f.master.at(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule.AppliesTo(f.probe, tm));
  }
}
BENCHMARK(BM_RuleApplication);

// Pinned to the legacy map-backed index so the series keeps measuring
// what the checked-in baseline measured; BM_FlatIndexProbe below is the
// same probe through the flat table.
void BM_MasterLookup(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index_map->Candidates(0, f.probe));
  }
}
BENCHMARK(BM_MasterLookup)->Arg(1000)->Arg(10000);

// The identical probe against the cache-conscious flat index — the
// headline comparison for the storage-layer rework.
void BM_FlatIndexProbe(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index->Candidates(0, f.probe));
  }
}
BENCHMARK(BM_FlatIndexProbe)->Arg(1000)->Arg(10000);

// Batched probes with software prefetch between hash and resolve, the
// shard-loop pipeline of the repair engines. Arg = block size.
void BM_BatchedProbe(benchmark::State& state) {
  Fixture& f = SharedFixture(10000);
  FlatKeyIndex index(f.master, f.rules.at(0).lhsm());
  const std::vector<AttrId>& probe_attrs = f.rules.at(0).lhs();
  const size_t block = static_cast<size_t>(state.range(0));
  std::vector<Tuple> probes;
  probes.reserve(block);
  for (size_t i = 0; i < block; ++i) {
    probes.push_back(f.master.at((i * 97) % f.master.size()));
  }
  ProbeBatch batch(&index);
  size_t hits = 0;
  for (auto _ : state) {
    batch.Clear();
    for (const Tuple& t : probes) batch.Add(t, probe_attrs);
    for (size_t i = 0; i < batch.size(); ++i) {
      hits += batch.Resolve(i).size();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(block));
}
BENCHMARK(BM_BatchedProbe)->Arg(8)->Arg(32)->Arg(128);

// Memoized repair replay: after the first (cold) RepairOneTuple, every
// iteration is a memo hit — projection, one flat-table probe, and a
// recorded-cell copy instead of a full saturation.
void BM_MemoHitPath(benchmark::State& state) {
  Fixture& f = SharedFixture(1000);
  AttrSet all = f.schema->AllAttrs();
  RepairMemo memo(f.rules, f.z0);
  PoolBridge bridge(f.master.pool().get(), f.master.pool().get());
  RepairOneTuple(*f.sat, f.probe, f.z0, all, &bridge, nullptr, &memo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RepairOneTuple(*f.sat, f.probe, f.z0, all, &bridge, nullptr, &memo));
  }
}
BENCHMARK(BM_MemoHitPath);

void BM_Saturate(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sat->Saturate(f.probe, f.z0));
  }
}
BENCHMARK(BM_Saturate)->Arg(1000)->Arg(10000);

void BM_CheckUniqueFix(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sat->CheckUniqueFix(f.probe, f.z0));
  }
}
BENCHMARK(BM_CheckUniqueFix)->Arg(1000)->Arg(10000);

void BM_TransFix(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.transfix->Run(f.probe, f.z0));
  }
}
BENCHMARK(BM_TransFix)->Arg(1000)->Arg(10000);

void BM_DeriveApplicableRules(benchmark::State& state) {
  Fixture& f = SharedFixture(1000);
  PartialMasterIndexCache cache(f.master);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DeriveApplicableRules(f.rules, f.master, &cache, f.probe, f.z0));
  }
}
BENCHMARK(BM_DeriveApplicableRules);

void BM_Suggest(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.suggester->Suggest(f.probe, f.z0));
  }
}
BENCHMARK(BM_Suggest)->Arg(1000)->Arg(10000);

void BM_DependencyGraphBuild(benchmark::State& state) {
  Fixture& f = SharedFixture(1000);
  for (auto _ : state) {
    DependencyGraph graph(f.rules);
    benchmark::DoNotOptimize(graph.num_nodes());
  }
}
BENCHMARK(BM_DependencyGraphBuild);

void BM_RegionPrecomputation(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RegionFinder finder(*f.sat);
    CRegionOptions opts;
    opts.trials = 8;
    opts.sample_masters = 16;
    benchmark::DoNotOptimize(finder.ComputeCertainRegions(opts));
  }
}
BENCHMARK(BM_RegionPrecomputation)->Arg(1000);

// --- Storage layer: interned ids vs. rendered string keys ---

// Legacy probe path (what KeyIndex did before the ValuePool refactor):
// render the projection to a "v1\x1fv2" string per probe and hash it.
void BM_StringKeyProbe(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  const std::vector<AttrId>& key = f.rules.at(0).lhsm();
  std::unordered_map<std::string, std::vector<size_t>> map;
  for (size_t i = 0; i < f.master.size(); ++i) {
    map[ProjectKey(f.master.at(i), key)].push_back(i);
  }
  const std::vector<AttrId>& probe_attrs = f.rules.at(0).lhs();
  size_t hits = 0;
  for (auto _ : state) {
    auto it = map.find(ProjectKey(f.probe, probe_attrs));
    if (it != map.end()) hits += it->second.size();
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_StringKeyProbe)->Arg(1000)->Arg(10000);

// Interned probe, probe tuple sharing the master pool: integer key hash.
void BM_InternedKeyProbe(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  KeyIndex index(f.master, f.rules.at(0).lhsm());
  const std::vector<AttrId>& probe_attrs = f.rules.at(0).lhs();
  size_t hits = 0;
  for (auto _ : state) {
    hits += index.LookupTuple(f.probe, probe_attrs).size();
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_InternedKeyProbe)->Arg(1000)->Arg(10000);

// Interned probe from a foreign pool through a memoized PoolBridge (the
// BatchRepair shard path: each distinct value hashed once, then ids).
void BM_InternedKeyProbeBridged(benchmark::State& state) {
  Fixture& f = SharedFixture(static_cast<size_t>(state.range(0)));
  KeyIndex index(f.master, f.rules.at(0).lhsm());
  const std::vector<AttrId>& probe_attrs = f.rules.at(0).lhs();
  PoolPtr local = std::make_shared<ValuePool>();
  Tuple probe = f.probe.RebasedTo(local);
  PoolBridge bridge(local.get(), f.master.pool().get());
  size_t hits = 0;
  for (auto _ : state) {
    hits += index.LookupTuple(probe, probe_attrs, &bridge).size();
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_InternedKeyProbeBridged)->Arg(1000)->Arg(10000);

// Value interning throughput (dictionary insert-or-hit mix).
void BM_ValuePoolIntern(benchmark::State& state) {
  std::vector<Value> values;
  for (int i = 0; i < 4096; ++i) {
    values.push_back(Value::Str("value_" + std::to_string(i % 1024)));
  }
  size_t k = 0;
  ValuePool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Intern(values[k]));
    k = (k + 1) & 4095;
  }
}
BENCHMARK(BM_ValuePoolIntern);

void BM_IncRepPass(benchmark::State& state) {
  Fixture& f = SharedFixture(1000);
  CfdSet cfds = HospWorkload::MakeCfdsFromMaster(f.schema, f.master, 200);
  Rng rng2(7);
  Relation non_master =
      HospWorkload::MakeMaster(f.schema, 500, &rng2, 1000000);
  DirtyGenOptions gen_options;
  gen_options.seed = 3;
  DirtyGenerator gen(f.master, non_master, gen_options);
  Relation dirty(f.schema);
  for (const DirtyPair& p : gen.Generate(200)) {
    Status st = dirty.Append(p.dirty);
    (void)st;
  }
  IncRep increp(cfds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(increp.Repair(dirty));
  }
}
BENCHMARK(BM_IncRepPass);

}  // namespace
}  // namespace certfix

BENCHMARK_MAIN();
