/// \file bench_fig12_scalability.cc
/// \brief Fig. 12 (a-d): efficiency and scalability — average elapsed time
/// per interaction round while varying |Dm| (panels a/b) and the number of
/// processed tuples |D| (panels c/d), for CertainFix (no cache) vs
/// CertainFix+ (BDD suggestion cache).
///
/// Expected shapes: sub-second rounds; CertainFix+ clearly cheaper than
/// CertainFix; CertainFix flat in |D|; CertainFix+ improving with |D| as
/// the cache warms, then flat.

#include "bench_util.h"

using namespace certfix;
using namespace certfix::bench;

namespace {

double AvgRoundMillis(const WorkloadSetup& w, size_t num_tuples,
                      bool use_cache) {
  CertainFixOptions options;
  options.use_cache = use_cache;
  CertainFixEngine engine(w.rules, w.master, options);
  ExperimentConfig config;
  config.num_tuples = num_tuples;
  config.gen.duplicate_rate = 0.30;
  config.gen.noise_rate = 0.20;
  config.gen.seed = 37;
  ExperimentResult result =
      RunInteractiveExperiment(&engine, w.master, w.non_master, config);
  return result.avg_round_seconds * 1e3;
}

}  // namespace

int main() {
  PrintHeader("Fig. 12: avg time per interaction round (ms)",
              "Sect. 6 Exp-2");
  size_t tuples = Scaled(1000);

  for (bool hosp : {true, false}) {
    const char* name = hosp ? "hosp" : "dblp";
    std::cout << "[" << name
              << "] varying |Dm|   (CertainFix | CertainFix+)\n";
    for (size_t dm : {Scaled(5000), Scaled(10000), Scaled(15000),
                      Scaled(20000), Scaled(25000)}) {
      WorkloadSetup w = hosp ? MakeHosp(dm) : MakeDblp(dm);
      double plain = AvgRoundMillis(w, tuples, /*use_cache=*/false);
      double cached = AvgRoundMillis(w, tuples, /*use_cache=*/true);
      std::cout << "  |Dm|=" << dm << " : " << std::fixed
                << std::setprecision(3) << plain << " ms | " << cached
                << " ms\n";
    }

    std::cout << "[" << name
              << "] varying |D|    (CertainFix | CertainFix+)\n";
    WorkloadSetup w =
        hosp ? MakeHosp(Scaled(10000)) : MakeDblp(Scaled(10000));
    for (size_t n : {size_t(10), size_t(100), Scaled(1000), Scaled(5000)}) {
      double plain = AvgRoundMillis(w, n, /*use_cache=*/false);
      double cached = AvgRoundMillis(w, n, /*use_cache=*/true);
      std::cout << "  |D|=" << n << " : " << std::fixed
                << std::setprecision(3) << plain << " ms | " << cached
                << " ms\n";
    }
    std::cout << "\n";
  }
  std::cout << "paper shapes: <1s per round; the BDD cache (CertainFix+) "
               "substantially reduces latency and flattens with |D|.\n";
  return 0;
}
