/// \file bench_util.h
/// \brief Shared setup for the Sect. 6 reproduction harnesses.
///
/// Sizes follow the paper's defaults (d% = 30, n% = 20, |Dm| = 10K,
/// |D| = 10K) scaled by the CERTFIX_SCALE environment variable. The
/// default scale of 0.2 keeps each binary in the seconds range; set
/// CERTFIX_SCALE=1 for paper-size runs.

#ifndef CERTFIX_BENCH_BENCH_UTIL_H_
#define CERTFIX_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "workload/dblp.h"
#include "workload/experiment.h"
#include "workload/hosp.h"

namespace certfix {
namespace bench {

inline double Scale() {
  const char* env = std::getenv("CERTFIX_SCALE");
  if (env == nullptr) return 0.2;
  double s = std::strtod(env, nullptr);
  return s > 0 ? s : 0.2;
}

inline size_t Scaled(size_t paper_size) {
  double v = static_cast<double>(paper_size) * Scale();
  return v < 50 ? 50 : static_cast<size_t>(v);
}

/// Paper defaults.
struct Defaults {
  double duplicate_rate = 0.30;
  double noise_rate = 0.20;
  size_t dm_size = Scaled(10000);
  size_t num_tuples = Scaled(10000);
};

struct WorkloadSetup {
  std::string name;
  SchemaPtr schema;
  RuleSet rules;
  Relation master;
  Relation non_master;
};

inline WorkloadSetup MakeHosp(size_t dm_size, uint64_t seed = 42) {
  WorkloadSetup w;
  w.name = "hosp";
  w.schema = HospWorkload::MakeSchema();
  w.rules = HospWorkload::MakeRules(w.schema);
  Rng rng(seed);
  w.master = HospWorkload::MakeMaster(w.schema, dm_size, &rng);
  Rng rng2(seed * 31 + 7);
  w.non_master =
      HospWorkload::MakeMaster(w.schema, dm_size / 2, &rng2, 1000000);
  return w;
}

inline WorkloadSetup MakeDblp(size_t dm_size, uint64_t seed = 42) {
  WorkloadSetup w;
  w.name = "dblp";
  w.schema = DblpWorkload::MakeSchema();
  w.rules = DblpWorkload::MakeRules(w.schema);
  Rng rng(seed);
  w.master = DblpWorkload::MakeMaster(w.schema, dm_size, &rng);
  Rng rng2(seed * 31 + 7);
  w.non_master =
      DblpWorkload::MakeMaster(w.schema, dm_size / 2, &rng2, 1000000);
  return w;
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::cout << "\n=== " << title << " ===\n"
            << "(paper reference: " << paper << "; scale "
            << Scale() << ", set CERTFIX_SCALE=1 for paper sizes)\n\n";
}

inline void PrintRoundSeries(const std::string& label,
                             const ExperimentResult& result, bool tuple_level) {
  std::cout << label;
  for (const RoundMetrics& m : result.per_round) {
    std::cout << "  " << std::fixed << std::setprecision(3)
              << (tuple_level ? m.recall_t : m.f_measure);
  }
  std::cout << "\n";
}

}  // namespace bench
}  // namespace certfix

#endif  // CERTFIX_BENCH_BENCH_UTIL_H_
