/// \file bench_parallel_repair.cc
/// \brief Throughput of the parallel batch-repair engine (Sect. 7
/// future work: "efficiently find certain fixes for data in a
/// database"). Repairs one generated HOSP dirty batch — trusted keys
/// {id, mCode}, the rest noisy — at 1/2/4/8 threads and reports
/// tuples/sec plus speedup over the sequential reference path, checking
/// along the way that every thread count produces the same repair.
///
/// Build & run:  ./build/bench/bench_parallel_repair

#include "bench_util.h"
#include "core/batch_repair.h"
#include "util/thread_pool.h"

namespace certfix {
namespace bench {
namespace {

bool SameRepair(const BatchRepairResult& a, const BatchRepairResult& b) {
  if (a.tuples_fully_covered != b.tuples_fully_covered ||
      a.tuples_partial != b.tuples_partial ||
      a.tuples_untouched != b.tuples_untouched ||
      a.tuples_conflicting != b.tuples_conflicting ||
      a.cells_changed != b.cells_changed || a.conflict_rows != b.conflict_rows ||
      a.repaired.size() != b.repaired.size()) {
    return false;
  }
  for (size_t i = 0; i < a.repaired.size(); ++i) {
    if (!(a.repaired.at(i) == b.repaired.at(i))) return false;
  }
  return true;
}

int Run() {
  Defaults defaults;
  PrintHeader("Parallel batch repair: tuples/sec vs worker count",
              "Sect. 7 future work; engine of docs/ARCHITECTURE.md");

  WorkloadSetup w = MakeHosp(defaults.dm_size);
  MasterIndex index(w.rules, w.master);
  Saturator sat(w.rules, w.master, index);

  AttrSet trusted;
  trusted.Add(*w.schema->IndexOf("id"));
  trusted.Add(*w.schema->IndexOf("mCode"));

  ExperimentConfig config;
  config.num_tuples = defaults.num_tuples;
  config.gen.duplicate_rate = defaults.duplicate_rate;
  config.gen.noise_rate = defaults.noise_rate;
  config.gen.seed = 17;

  std::cout << "|Dm| = " << w.master.size() << ", |D| = "
            << config.num_tuples << ", trusted Z = {id, mCode}, hardware "
            << "threads = " << DefaultParallelism() << "\n\n"
            << "threads  chunk   tuples/sec   speedup  fully  partial  "
               "conflicts\n";

  double base_tps = 0.0;
  BatchExperimentResult reference;
  bool all_identical = true;
  for (size_t threads : {1, 2, 4, 8}) {
    RepairOptions options;
    options.num_threads = threads;
    BatchExperimentResult r = RunBatchRepairExperiment(
        sat, w.master, w.non_master, trusted, config, options);
    if (threads == 1) {
      base_tps = r.tuples_per_second;
      reference = r;
    } else if (!SameRepair(r.repair, reference.repair)) {
      all_identical = false;
    }
    std::cout << std::setw(7) << threads << std::setw(7)
              << ResolveChunkSize(config.num_tuples, threads,
                                  options.chunk_size)
              << std::setw(13) << std::fixed << std::setprecision(0)
              << r.tuples_per_second << std::setw(9) << std::setprecision(2)
              << (base_tps > 0 ? r.tuples_per_second / base_tps : 0.0)
              << std::setw(7) << r.repair.tuples_fully_covered
              << std::setw(9) << r.repair.tuples_partial << std::setw(11)
              << r.repair.tuples_conflicting << "\n";
  }

  std::cout << "\nquality (thread-independent): recall_a = " << std::fixed
            << std::setprecision(3) << reference.recall_a
            << ", precision_a = " << reference.precision_a
            << ", F-measure = " << reference.f_measure << "\n";
  if (!all_identical) {
    std::cout << "ERROR: parallel repair diverged from the sequential "
                 "reference\n";
    return 1;
  }
  std::cout << "all thread counts produced bit-identical repairs\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace certfix

int main() { return certfix::bench::Run(); }
