/// \file bench_regions_table.cc
/// \brief Exp-1(1): the number of attributes in the certain region found
/// by CompCRegion vs the GRegion greedy baseline (the first table of
/// Sect. 6).
///
/// Paper values: HOSP 2 vs 4; DBLP 5 vs 9. Expected shape: CompCRegion
/// strictly smaller on both workloads (our greedy reconstruction lands at
/// 4 and 6; see EXPERIMENTS.md).

#include "bench_util.h"
#include "core/cregion.h"

using namespace certfix;
using namespace certfix::bench;

int main() {
  PrintHeader("Exp-1(1): certain-region size, CompCRegion vs GRegion",
              "Sect. 6, first table");

  std::cout << "dataset    CompCRegion  GRegion\n";
  bool comp_smaller_everywhere = true;
  for (bool hosp : {true, false}) {
    WorkloadSetup w =
        hosp ? MakeHosp(Scaled(2000)) : MakeDblp(Scaled(2000));
    MasterIndex index(w.rules, w.master);
    Saturator sat(w.rules, w.master, index);
    RegionFinder finder(sat);
    std::vector<AttrId> comp = finder.CompCRegionZ();
    std::vector<AttrId> greedy = finder.GRegionZ();
    std::cout << w.name << "       " << comp.size() << "            "
              << greedy.size() << "     (Z_comp = {";
    for (size_t i = 0; i < comp.size(); ++i) {
      std::cout << (i ? "," : "") << w.schema->attr_name(comp[i]);
    }
    std::cout << "})\n";
    comp_smaller_everywhere &= comp.size() < greedy.size();
  }
  std::cout << "\npaper: hosp 2 vs 4, dblp 5 vs 9 -- shape holds iff "
               "CompCRegion < GRegion on both: "
            << (comp_smaller_everywhere ? "YES" : "NO") << "\n";
  return comp_smaller_everywhere ? 0 : 1;
}
