/// \file bench_ablation.cc
/// \brief Ablations of the design choices called out in DESIGN.md:
///
///  A1  exact unique-fix check (full B-excluded analysis, Thm 4) vs the
///      same-round-only conflict screen — cost of exactness;
///  A2  direct-fix query checker (Thm 5) vs the general saturation
///      checker on direct rules — the PTIME special case in practice;
///  A3  distinct-value summaries vs raw candidate scans — why master
///      lookups stay O(#distinct values);
///  A4  randomized-restart region search: solution size vs trial count.

#include <iomanip>
#include <iostream>

#include "bench_util.h"
#include "core/cregion.h"
#include "core/direct_fix.h"
#include "rules/rule_parser.h"
#include "util/timer.h"

using namespace certfix;
using namespace certfix::bench;

namespace {

double MeasureMs(size_t iters, const std::function<void()>& fn) {
  Timer timer;
  for (size_t i = 0; i < iters; ++i) fn();
  return timer.Millis() / static_cast<double>(iters);
}

}  // namespace

int main() {
  PrintHeader("Ablations of design choices", "DESIGN.md 2.1-2.3");
  WorkloadSetup w = MakeHosp(Scaled(10000));
  MasterIndex index(w.rules, w.master);
  Saturator sat(w.rules, w.master, index);
  Tuple probe = w.master.at(w.master.size() / 2);
  AttrSet z{*w.schema->IndexOf("id"), *w.schema->IndexOf("mCode")};
  constexpr size_t kIters = 500;

  // A1: exactness cost.
  double saturate_ms =
      MeasureMs(kIters, [&] { sat.Saturate(probe, z); });
  double exact_ms =
      MeasureMs(kIters, [&] { sat.CheckUniqueFix(probe, z); });
  std::cout << "A1 unique-fix decision:   same-round screen "
            << std::fixed << std::setprecision(4) << saturate_ms
            << " ms  |  exact (Thm 4) " << exact_ms << " ms  ("
            << std::setprecision(1) << exact_ms / saturate_ms
            << "x; buys order-independent conflict detection)\n";

  // A2: direct-fix special case. Direct subset of the supplier rules.
  {
    SchemaPtr r = Schema::Make(
        "S", std::vector<std::string>{"fn", "ln", "AC", "phn", "type",
                                      "str", "city", "zip", "item"});
    SchemaPtr rm = Schema::Make(
        "Sm", std::vector<std::string>{"FN", "LN", "AC", "Hphn", "Mphn",
                                       "str", "city", "zip", "DOB",
                                       "gender"});
    Relation dm(rm);
    Status st = dm.AppendStrings({"Robert", "Brady", "131", "6884563",
                                  "079172485", "51 Elm Row", "Edi",
                                  "EH7 4AH", "11/11/55", "M"});
    st = dm.AppendStrings({"Mark", "Smith", "020", "6884563", "075568485",
                           "20 Baker St.", "Lnd", "NW1 6XE", "25/12/67",
                           "M"});
    (void)st;
    RuleSet direct = std::move(ParseRules(R"(
      rule d1: (zip | zip) -> (AC | AC)
      rule d2: (zip | zip) -> (str | str)
      rule d3: (zip | zip) -> (city | city)
      rule d4: (AC | AC) -> (city | city) when AC!=0800
    )", r, rm)).ValueOrDie();
    DirectFixChecker query_checker(direct, dm);
    MasterIndex di(direct, dm);
    Saturator ds(direct, dm, di);
    ConsistencyChecker general(ds);

    std::vector<AttrId> zz = {*r->IndexOf("zip"), *r->IndexOf("AC")};
    PatternTuple tc(r);
    tc.SetConst(*r->IndexOf("zip"), Value::Str("EH7 4AH"));
    tc.SetConst(*r->IndexOf("AC"), Value::Str("020"));
    Region region = Region::Of(r, zz);
    st = region.AddRow(tc);

    double query_ms = MeasureMs(2000, [&] {
      Result<bool> ok = query_checker.IsConsistent(zz, tc);
      (void)ok;
    });
    double general_ms = MeasureMs(2000, [&] {
      Result<bool> ok = general.IsConsistent(region);
      (void)ok;
    });
    std::cout << "A2 consistency (direct): query-based (Thm 5) "
              << std::setprecision(4) << query_ms
              << " ms  |  general (Thm 4) " << general_ms << " ms\n";
  }

  // A3: value summaries vs raw scans: compare a summary lookup against
  // iterating the raw candidate rows for a key matching many masters.
  {
    size_t rule_idx = 3;  // phi4: (id, mCode) — narrow; use phi15: mCode
    for (size_t i = 0; i < w.rules.size(); ++i) {
      if (w.rules.at(i).name() == "phi15") rule_idx = i;
    }
    double summary_ms = MeasureMs(20000, [&] {
      
      const auto& s = index.RhsValues(rule_idx, probe);
      (void)s;
    });
    double scan_ms = MeasureMs(20000, [&] {
      const auto& rows = index.Candidates(rule_idx, probe);
      size_t distinct = 0;
      Value last;
      for (size_t m : rows) {
        const Value& v =
            w.master.at(m).at(w.rules.at(rule_idx).rhsm());
        if (!(v == last)) {
          ++distinct;
          last = v;
        }
      }
      (void)distinct;
    });
    std::cout << "A3 master proposals:      summary lookup "
              << std::setprecision(5) << summary_ms
              << " ms  |  raw candidate scan " << scan_ms << " ms  (key "
              << "matches " << index.Candidates(rule_idx, probe).size()
              << " master rows)\n";
  }

  // A4: region-search restarts vs solution size.
  {
    RegionFinder finder(sat);
    std::cout << "A4 region search restarts -> |Z| found:";
    for (size_t trials : {1u, 2u, 4u, 8u, 16u, 32u}) {
      CRegionOptions opts;
      opts.trials = trials;
      opts.seed = 1;
      std::vector<AttrId> zz = finder.CompCRegionZ(opts);
      std::cout << "  " << trials << "->" << zz.size();
    }
    std::cout << "   (minimum is 2 for HOSP)\n";
  }
  return 0;
}
