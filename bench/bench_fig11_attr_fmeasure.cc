/// \file bench_fig11_attr_fmeasure.cc
/// \brief Fig. 11 (a-f): attribute-level F-measure after k rounds under
/// the same three sweeps as Fig. 10, plus the IncRep comparison of
/// Exp-1(7) (IncRep is evaluated against round k = 1, as in the paper).
///
/// Expected shapes: F grows with d% and |Dm|; F insensitive to n% for
/// CertainFix while IncRep's F degrades with n% (no certainty guarantee).

#include "bench_util.h"

using namespace certfix;
using namespace certfix::bench;

namespace {

struct Outcome {
  ExperimentResult interactive;
  BaselineResult increp;
};

Outcome RunBoth(const WorkloadSetup& w, double d, double n,
                size_t num_tuples) {
  Outcome out;
  CertainFixEngine engine(w.rules, w.master, CertainFixOptions{});
  ExperimentConfig config;
  config.num_tuples = num_tuples;
  config.report_rounds = 4;
  config.gen.duplicate_rate = d;
  config.gen.noise_rate = n;
  config.gen.seed = 29;
  out.interactive =
      RunInteractiveExperiment(&engine, w.master, w.non_master, config);

  CfdSet cfds = w.name == "hosp"
                    ? HospWorkload::MakeCfdsFromMaster(w.schema, w.master,
                                                       w.master.size())
                    : DblpWorkload::MakeCfdsFromMaster(w.schema, w.master,
                                                       w.master.size());
  DirtyGenerator gen(w.master, w.non_master, config.gen);
  out.increp = RunIncRepBaseline(cfds, gen.Generate(num_tuples));
  return out;
}

}  // namespace

int main() {
  PrintHeader("Fig. 11: attribute-level F-measure sweeps + IncRep",
              "Sect. 6 Exp-1(4)-(7)");
  Defaults defaults;
  size_t tuples = Scaled(2000);

  for (bool hosp : {true, false}) {
    const char* name = hosp ? "hosp" : "dblp";

    std::cout << "[" << name
              << "] varying d% (cols: F at k=1..4 | IncRep F)\n";
    {
      WorkloadSetup w =
          hosp ? MakeHosp(defaults.dm_size) : MakeDblp(defaults.dm_size);
      for (double d : {0.1, 0.3, 0.5}) {
        Outcome o = RunBoth(w, d, defaults.noise_rate, tuples);
        std::cout << "  d%=" << static_cast<int>(d * 100) << " :";
        for (const RoundMetrics& m : o.interactive.per_round) {
          std::cout << "  " << std::fixed << std::setprecision(3)
                    << m.f_measure;
        }
        std::cout << "  |  " << o.increp.f_measure << "\n";
      }
    }

    std::cout << "[" << name << "] varying |Dm|\n";
    for (size_t dm : {Scaled(5000), Scaled(15000), Scaled(25000)}) {
      WorkloadSetup w = hosp ? MakeHosp(dm) : MakeDblp(dm);
      Outcome o =
          RunBoth(w, defaults.duplicate_rate, defaults.noise_rate, tuples);
      std::cout << "  |Dm|=" << dm << " :";
      for (const RoundMetrics& m : o.interactive.per_round) {
        std::cout << "  " << std::fixed << std::setprecision(3)
                  << m.f_measure;
      }
      std::cout << "  |  " << o.increp.f_measure << "\n";
    }

    std::cout << "[" << name << "] varying n%\n";
    {
      WorkloadSetup w =
          hosp ? MakeHosp(defaults.dm_size) : MakeDblp(defaults.dm_size);
      for (double n : {0.1, 0.3, 0.5}) {
        Outcome o = RunBoth(w, defaults.duplicate_rate, n, tuples);
        std::cout << "  n%=" << static_cast<int>(n * 100) << " :";
        for (const RoundMetrics& m : o.interactive.per_round) {
          std::cout << "  " << std::fixed << std::setprecision(3)
                    << m.f_measure;
        }
        std::cout << "  |  " << o.increp.f_measure
                  << "  (IncRep precision " << o.increp.precision_a << ")\n";
      }
    }
    std::cout << "\n";
  }
  std::cout << "paper shapes: F grows with d% and |Dm|; CertainFix F flat "
               "in n% (precision always 1); IncRep F degrades as n% "
               "rises.\n";
  return 0;
}
