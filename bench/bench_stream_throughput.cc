/// \file bench_stream_throughput.cc
/// \brief Throughput of the streaming point-of-entry repair engine
/// (src/stream/): one generated HOSP dirty stream pushed through
/// StreamRepairEngine at 1/2/4/8 shard workers, reporting tuples/sec and
/// speedup over the single-shard run, and checking that every shard
/// count produces byte-identical output (the ordered-merge guarantee).
///
/// Build & run:  ./build/bench/bench_stream_throughput [--json OUT.json]
///
/// --json writes a small machine-readable summary (consumed by the CI
/// bench-smoke leg as BENCH_stream.json).

#include <fstream>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "relational/csv.h"
#include "stream/stream_repair.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/dirty_gen.h"

namespace certfix {
namespace bench {
namespace {

struct RunResult {
  size_t shards = 0;
  double tuples_per_second = 0;
  StreamSnapshot stats;
  std::string csv;  ///< WriteCsv bytes of the collected output
};

RunResult RunOnce(const Saturator& sat, const Relation& dirty,
                  AttrSet trusted, size_t shards) {
  CollectingSink sink(dirty.schema());
  StreamOptions options;
  options.num_shards = shards;
  options.queue_capacity = 64;
  Timer timer;
  StreamRepairEngine engine(sat, trusted, &sink, options);
  for (size_t i = 0; i < dirty.size(); ++i) {
    engine.Push(dirty.at(i));
  }
  RunResult r;
  r.shards = shards;
  r.stats = engine.Finish();
  double seconds = timer.Seconds();
  r.tuples_per_second = seconds > 0 ? dirty.size() / seconds : 0;
  std::ostringstream csv;
  WriteCsv(sink.repaired(), csv);
  r.csv = csv.str();
  return r;
}

int Run(const std::string& json_path) {
  Defaults defaults;
  PrintHeader("Streaming repair: tuples/sec vs shard-worker count",
              "point-of-entry monitoring (Sect. 1); src/stream/");

  WorkloadSetup w = MakeHosp(defaults.dm_size);
  MasterIndex index(w.rules, w.master);
  Saturator sat(w.rules, w.master, index);

  AttrSet trusted;
  trusted.Add(*w.schema->IndexOf("id"));
  trusted.Add(*w.schema->IndexOf("mCode"));

  DirtyGenOptions gen_options;
  gen_options.duplicate_rate = defaults.duplicate_rate;
  gen_options.noise_rate = defaults.noise_rate;
  gen_options.protected_attrs = trusted;
  gen_options.seed = 17;
  DirtyGenerator gen(w.master, w.non_master, gen_options);
  Relation dirty(w.schema);
  for (const DirtyPair& pair : gen.Generate(defaults.num_tuples)) {
    dirty.Append(pair.dirty);
  }

  std::cout << "|Dm| = " << w.master.size() << ", stream length = "
            << dirty.size() << ", trusted Z = {id, mCode}, hardware "
            << "threads = " << DefaultParallelism() << "\n\n"
            << "shards   tuples/sec   speedup  fully  partial  conflicts"
            << "  bp-waits\n";

  std::vector<RunResult> runs;
  double base_tps = 0;
  bool all_identical = true;
  for (size_t shards : {1, 2, 4, 8}) {
    RunResult r = RunOnce(sat, dirty, trusted, shards);
    if (shards == 1) {
      base_tps = r.tuples_per_second;
    } else if (r.csv != runs.front().csv) {
      all_identical = false;
    }
    std::cout << std::setw(6) << shards << std::setw(13) << std::fixed
              << std::setprecision(0) << r.tuples_per_second << std::setw(9)
              << std::setprecision(2)
              << (base_tps > 0 ? r.tuples_per_second / base_tps : 0.0)
              << std::setw(7) << r.stats.fully_covered << std::setw(9)
              << r.stats.partial << std::setw(11) << r.stats.conflicting
              << std::setw(10) << r.stats.backpressure_waits << "\n";
    runs.push_back(std::move(r));
  }

  if (!all_identical) {
    std::cout << "\nERROR: shard counts produced diverging output\n";
    return 1;
  }
  std::cout << "\nall shard counts produced byte-identical output\n";
  double speedup8 = base_tps > 0
                        ? runs.back().tuples_per_second / base_tps
                        : 0.0;
  if (DefaultParallelism() >= 8 && speedup8 < 2.0) {
    // Advisory on parallel hardware; meaningless on narrow machines.
    std::cout << "WARNING: 8-shard speedup " << std::setprecision(2)
              << speedup8 << " is below the 2x target\n";
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cout << "cannot write " << json_path << "\n";
      return 1;
    }
    json << "{\n  \"benchmark\": \"stream_throughput\",\n"
         << "  \"stream_length\": " << dirty.size() << ",\n"
         << "  \"master_rows\": " << w.master.size() << ",\n"
         << "  \"hardware_threads\": " << DefaultParallelism() << ",\n"
         << "  \"runs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
      const RunResult& r = runs[i];
      json << "    {\"shards\": " << r.shards << ", \"tuples_per_sec\": "
           << std::fixed << std::setprecision(1) << r.tuples_per_second
           << ", \"backpressure_waits\": " << r.stats.backpressure_waits
           << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"speedup_8_shards\": " << std::setprecision(3)
         << speedup8 << ",\n  \"output_identical\": true\n}\n";
    std::cout << "JSON summary written to " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace certfix

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  return certfix::bench::Run(json_path);
}
