/// \file bench_scenarios.cc
/// \brief Cross-engine throughput over the adversarial scenario corpus
/// (tests/scenarios/*.toml, src/workload/scenario.h): each spec is
/// generated, serialized to its delta-log bytes, and driven through the
/// delta engine (DeltaLogSource replay), the stream engine (point-of-
/// entry repair of the final input), and a from-scratch BatchRepair
/// baseline — asserting byte-identical output, so every throughput
/// number is also a correctness gate.
///
/// Build & run:  ./build/bench/bench_scenarios
///               [--specs DIR] [--json OUT.json] [--threads N]
///               [--scale-deltas K] [--index flat|map] [--no-memo]
///               [--no-telemetry]
///
/// Defaults: DIR = tests/scenarios, threads = hardware,
/// --scale-deltas 20 multiplies each spec's delta count so the small
/// corpus-sized specs produce measurable runs (the checked-in specs stay
/// test-sized; scaling happens here, in memory). --json writes the
/// machine-readable summary published as BENCH_scenarios.json; scenarios
/// are listed in sorted filename order so tools/bench_diff.py can match
/// list entries by index.
///
/// Each scenario runs under its own telemetry registry and publishes a
/// per-scenario "latency" object (repair_tuple_ns / queue_push_wait_ns
/// percentiles) in the JSON — telemetry is on by default, as in
/// production; --no-telemetry disables the clock reads to measure the
/// instrumentation overhead itself (tools/bench_diff.py ignores keys
/// absent from the baseline, so older baselines keep working).
///
/// --index map --no-memo runs the whole corpus on the legacy
/// unordered_map master index with memoization off — the CI release job
/// runs that leg once as a cross-implementation oracle (the byte-
/// agreement gate then covers flat-vs-map and memo-vs-not).

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/batch_repair.h"
#include "incremental/delta_repair.h"
#include "relational/csv.h"
#include "stream/sink.h"
#include "stream/stream_repair.h"
#include "telemetry/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/scenario.h"

namespace certfix {
namespace bench {
namespace {

std::string CsvBytes(const Relation& rel) {
  std::ostringstream out;
  WriteCsv(rel, out);
  return out.str();
}

struct ScenarioRow {
  std::string name;
  size_t num_deltas = 0;
  size_t final_rows = 0;
  double generate_seconds = 0;
  double batch_seconds = 0;
  double delta_apply_seconds = 0;
  double deltas_per_sec = 0;
  double stream_seconds = 0;
  double stream_rows_per_sec = 0;
  bool output_identical = false;
  telemetry::HistogramSnapshot repair_tuple;
  telemetry::HistogramSnapshot queue_push_wait;
};

/// Renders one histogram snapshot as a flat JSON object (integer ns).
void WriteLatencyJson(std::ostream& json, const char* key,
                      const telemetry::HistogramSnapshot& h,
                      const char* trailer) {
  json << "        \"" << key << "\": {\"count\": " << h.count
       << ", \"p50\": " << h.p50 << ", \"p90\": " << h.p90
       << ", \"p99\": " << h.p99 << ", \"max\": " << h.max << "}" << trailer
       << "\n";
}

int Run(const std::string& specs_dir, const std::string& json_path,
        size_t threads, size_t scale_deltas, IndexKind index_kind,
        bool use_memo) {
  PrintHeader("Scenario corpus: cross-engine throughput + byte agreement",
              "adversarial workload shapes; src/workload/scenario.h");
  if (threads == 0) threads = DefaultParallelism();

  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(specs_dir, ec)) {
    if (entry.path().extension() == ".toml") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec || paths.empty()) {
    std::cout << "no scenario specs under " << specs_dir << "\n";
    return 1;
  }
  std::sort(paths.begin(), paths.end());

  std::vector<ScenarioRow> rows;
  bool all_identical = true;
  for (const std::string& path : paths) {
    Result<ScenarioSpec> loaded = LoadScenarioSpecFile(path);
    if (!loaded.ok()) {
      std::cout << path << ": " << loaded.status() << "\n";
      return 1;
    }
    ScenarioSpec spec = std::move(loaded).ValueOrDie();
    spec.num_deltas *= scale_deltas;

    // Fresh registry per scenario so each JSON row's latency block
    // covers exactly the engines run for that scenario.
    telemetry::ScopedRegistry scenario_registry;

    ScenarioRow row;
    row.name = spec.name;
    row.num_deltas = spec.num_deltas;

    Timer gen_timer;
    Result<Scenario> sc = GenerateScenario(spec);
    if (!sc.ok()) {
      std::cout << spec.name << ": " << sc.status() << "\n";
      return 1;
    }
    row.generate_seconds = gen_timer.Seconds();
    const std::string log = DeltaLogToString(*sc);

    // Oracle replay + from-scratch batch repair of the final state.
    std::vector<std::vector<std::string>> input_rows = RenderRows(sc->initial);
    std::vector<std::vector<std::string>> master_rows = RenderRows(sc->master);
    if (Status st = ApplyDeltaLog(sc->deltas, &input_rows, &master_rows);
        !st.ok()) {
      std::cout << spec.name << ": replay failed: " << st << "\n";
      return 1;
    }
    Result<Relation> final_input = RelationFromRows(sc->schema, input_rows);
    Result<Relation> final_master = RelationFromRows(sc->schema, master_rows);
    if (!final_input.ok() || !final_master.ok()) {
      std::cout << spec.name << ": final-state build failed\n";
      return 1;
    }
    row.final_rows = final_input->size();

    Timer batch_timer;
    MasterIndex index(sc->rules, *final_master, index_kind);
    Saturator sat(sc->rules, *final_master, index);
    RepairOptions batch_options;
    batch_options.num_threads = threads;
    batch_options.use_memo = use_memo;
    BatchRepairResult batch =
        BatchRepair(sat, batch_options).Repair(*final_input, sc->trusted);
    row.batch_seconds = batch_timer.Seconds();
    const std::string want = CsvBytes(batch.repaired);

    // Delta engine: consume the serialized log via DeltaLogSource.
    std::string delta_bytes;
    {
      DeltaRepairOptions options;
      options.num_shards = threads;
      options.index_kind = index_kind;
      options.use_memo = use_memo;
      DeltaRepairEngine engine(sc->rules, sc->master, sc->trusted, options);
      if (Status st = engine.Load(sc->initial); !st.ok()) {
        std::cout << spec.name << ": load failed: " << st << "\n";
        return 1;
      }
      engine.Flush();
      std::istringstream in(log);
      DeltaLogSource source(sc->schema, sc->schema, in);
      Timer delta_timer;
      if (Status st = engine.ApplyAll(&source); !st.ok()) {
        std::cout << spec.name << ": delta replay failed: " << st << "\n";
        return 1;
      }
      engine.Flush();
      row.delta_apply_seconds = delta_timer.Seconds();
      row.deltas_per_sec = row.delta_apply_seconds > 0
                               ? static_cast<double>(sc->deltas.size()) /
                                     row.delta_apply_seconds
                               : 0;
      delta_bytes = CsvBytes(engine.SnapshotRepaired());
    }

    // Stream engine: point-of-entry repair of the final input rows.
    std::string stream_bytes;
    {
      StreamOptions options;
      options.num_shards = threads;
      options.use_memo = use_memo;
      std::ostringstream out;
      CsvStreamSink sink(sc->schema, out);
      StreamRepairEngine engine(sat, sc->trusted, &sink, options);
      Timer stream_timer;
      for (const auto& fields : input_rows) {
        if (Status st = engine.PushStrings(fields); !st.ok()) {
          std::cout << spec.name << ": push failed: " << st << "\n";
          return 1;
        }
      }
      engine.Finish();
      row.stream_seconds = stream_timer.Seconds();
      row.stream_rows_per_sec =
          row.stream_seconds > 0
              ? static_cast<double>(input_rows.size()) / row.stream_seconds
              : 0;
      stream_bytes = out.str();
    }

    row.repair_tuple =
        telemetry::Registry::Global()->GetHistogram("repair_tuple_ns")->Snap();
    row.queue_push_wait = telemetry::Registry::Global()
                              ->GetHistogram("queue_push_wait_ns")
                              ->Snap();

    row.output_identical = delta_bytes == want && stream_bytes == want;
    all_identical = all_identical && row.output_identical;
    std::cout << std::left << std::setw(16) << row.name << std::right
              << std::setw(7) << row.num_deltas << " deltas "
              << std::setw(6) << row.final_rows << " rows  " << std::fixed
              << std::setprecision(0) << std::setw(9) << row.deltas_per_sec
              << " deltas/s  " << std::setw(9) << row.stream_rows_per_sec
              << " stream rows/s  "
              << (row.output_identical ? "identical" : "DIVERGED") << "\n";
    rows.push_back(row);
  }

  if (!all_identical) {
    std::cout << "\nERROR: engine outputs diverged on at least one "
                 "scenario\n";
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cout << "cannot write " << json_path << "\n";
      return 1;
    }
    json << "{\n  \"benchmark\": \"scenarios\",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"scale_deltas\": " << scale_deltas << ",\n"
         << "  \"output_identical\": " << (all_identical ? "true" : "false")
         << ",\n  \"scenarios\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const ScenarioRow& r = rows[i];
      json << "    {\n      \"name\": \"" << r.name << "\",\n"
           << "      \"deltas\": " << r.num_deltas << ",\n"
           << "      \"final_rows\": " << r.final_rows << ",\n"
           << "      \"generate_seconds\": " << std::fixed
           << std::setprecision(4) << r.generate_seconds << ",\n"
           << "      \"batch_seconds\": " << r.batch_seconds << ",\n"
           << "      \"delta_apply_seconds\": " << r.delta_apply_seconds
           << ",\n"
           << "      \"deltas_per_sec\": " << std::setprecision(1)
           << r.deltas_per_sec << ",\n"
           << "      \"stream_seconds\": " << std::setprecision(4)
           << r.stream_seconds << ",\n"
           << "      \"stream_rows_per_sec\": " << std::setprecision(1)
           << r.stream_rows_per_sec << ",\n"
           << "      \"latency\": {\n";
      WriteLatencyJson(json, "repair_tuple_ns", r.repair_tuple, ",");
      WriteLatencyJson(json, "queue_push_wait_ns", r.queue_push_wait, "");
      json << "      },\n"
           << "      \"output_identical\": "
           << (r.output_identical ? "true" : "false") << "\n    }"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "JSON summary written to " << json_path << "\n";
  }
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace certfix

int main(int argc, char** argv) {
  std::string specs_dir = "tests/scenarios";
  std::string json_path;
  size_t threads = 0;
  size_t scale_deltas = 20;
  certfix::IndexKind index_kind = certfix::IndexKind::kFlat;
  bool use_memo = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--specs" && i + 1 < argc) {
      specs_dir = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--scale-deltas" && i + 1 < argc) {
      scale_deltas = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--index" && i + 1 < argc) {
      std::string kind = argv[++i];
      if (kind == "map") {
        index_kind = certfix::IndexKind::kMap;
      } else if (kind != "flat") {
        std::cout << "--index must be flat or map, got '" << kind << "'\n";
        return 1;
      }
    } else if (arg == "--no-memo") {
      use_memo = false;
    } else if (arg == "--no-telemetry") {
      certfix::telemetry::SetEnabled(false);
    }
  }
  return certfix::bench::Run(specs_dir, json_path, threads, scale_deltas,
                             index_kind, use_memo);
}
