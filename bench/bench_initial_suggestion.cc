/// \file bench_initial_suggestion.cc
/// \brief Exp-1(2): F-measure when the initial suggestion is the
/// highest-quality certain region (CRHQ) vs the median-quality one (CRMQ).
///
/// Paper values: hosp 0.74 vs 0.70; dblp 0.79 vs 0.69. Expected shape:
/// CRHQ >= CRMQ on both workloads.

#include "bench_util.h"

using namespace certfix;
using namespace certfix::bench;

int main() {
  PrintHeader("Exp-1(2): initial suggestion CRHQ vs CRMQ (F-measure)",
              "Sect. 6, second table");
  Defaults defaults;
  defaults.dm_size = Scaled(5000);
  size_t tuples = Scaled(2000);

  std::cout << "dataset    CRHQ    CRMQ\n";
  bool shape = true;
  for (bool hosp : {true, false}) {
    WorkloadSetup w = hosp ? MakeHosp(defaults.dm_size)
                           : MakeDblp(defaults.dm_size);
    double f[2] = {0, 0};
    CertainFixOptions options;
    CertainFixEngine engine(w.rules, w.master, options);
    size_t picks[2] = {0, engine.regions().size() / 2};
    for (int variant = 0; variant < 2; ++variant) {
      engine.set_initial_pick(picks[variant]);
      ExperimentConfig config;
      config.num_tuples = tuples;
      config.report_rounds = 1;  // F after the first round, like Exp-1(2)
      config.gen.duplicate_rate = defaults.duplicate_rate;
      config.gen.noise_rate = defaults.noise_rate;
      config.gen.seed = 5;
      ExperimentResult result = RunInteractiveExperiment(
          &engine, w.master, w.non_master, config);
      f[variant] = result.per_round[0].f_measure;
    }
    std::cout << w.name << "       " << std::fixed << std::setprecision(3)
              << f[0] << "   " << f[1] << "\n";
    shape &= f[0] + 1e-9 >= f[1];
  }
  std::cout << "\npaper: hosp 0.74 vs 0.70, dblp 0.79 vs 0.69 -- shape "
               "holds iff CRHQ >= CRMQ: "
            << (shape ? "YES" : "NO") << "\n";
  return shape ? 0 : 1;
}
