/// \file bench_incremental_updates.cc
/// \brief Incremental vs full-recompute repair under a mutation stream
/// (src/incremental/): load a generated HOSP relation into a
/// DeltaRepairEngine, apply a delta mix touching ~1% of the tuples
/// (updates, inserts, deletes, plus a few master upserts), and compare the
/// wall-clock of the incremental maintenance against BatchRepair run from
/// scratch over the final input — verifying byte-identical output.
///
/// Build & run:  ./build/bench/bench_incremental_updates
///               [--json OUT.json] [--rows N] [--mutate-rate R]
///               [--threads N]
///
/// Defaults: 100000 rows, 1% mutation rate (the ROADMAP acceptance
/// scenario), threads = hardware. --json writes the machine-readable
/// summary the CI bench-smoke leg publishes as BENCH_incremental.json.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/batch_repair.h"
#include "incremental/delta_repair.h"
#include "relational/csv.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/dirty_gen.h"

namespace certfix {
namespace bench {
namespace {

std::string ToCsv(const Relation& rel) {
  std::ostringstream out;
  WriteCsv(rel, out);
  return out.str();
}

int Run(const std::string& json_path, size_t rows, double mutate_rate,
        size_t threads) {
  Defaults defaults;
  PrintHeader("Incremental repair: delta maintenance vs full recompute",
              "update-aware certain fixes; src/incremental/");
  if (threads == 0) threads = DefaultParallelism();

  WorkloadSetup w = MakeHosp(defaults.dm_size);
  AttrSet trusted;
  trusted.Add(*w.schema->IndexOf("id"));
  trusted.Add(*w.schema->IndexOf("mCode"));

  DirtyGenOptions gen_options;
  gen_options.duplicate_rate = defaults.duplicate_rate;
  gen_options.noise_rate = defaults.noise_rate;
  gen_options.protected_attrs = trusted;
  gen_options.seed = 23;
  DirtyGenerator gen(w.master, w.non_master, gen_options);
  Relation dirty(w.schema);
  dirty.Reserve(rows);
  for (const DirtyPair& pair : gen.Generate(rows)) {
    dirty.Append(pair.dirty);
  }

  DeltaRepairOptions options;
  options.num_shards = threads;
  DeltaRepairEngine engine(w.rules, w.master, trusted, options);

  Timer load_timer;
  engine.Load(dirty);
  engine.Flush();
  double load_seconds = load_timer.Seconds();

  // Phase 1 — the ROADMAP acceptance scenario: mutate ~mutate_rate of the
  // relation (80% point updates, 10% inserts, 10% deletes) and maintain
  // the repair incrementally; the baseline is one BatchRepair from
  // scratch over the final input.
  size_t mutations = static_cast<size_t>(rows * mutate_rate);
  if (mutations < 10) mutations = 10;
  Rng rng(97);
  std::vector<DirtyPair> fresh = gen.Generate(mutations);
  size_t next_fresh = 0;

  Timer delta_timer;
  for (size_t i = 0; i < mutations; ++i) {
    double roll = rng.NextDouble();
    if (roll < 0.80) {
      engine.Update(rng.Index(engine.size()),
                    fresh[next_fresh++ % fresh.size()].dirty);
    } else if (roll < 0.90) {
      engine.Insert(fresh[next_fresh++ % fresh.size()].dirty);
    } else {
      engine.Delete(rng.Index(engine.size()));
    }
  }
  engine.Flush();
  double delta_seconds = delta_timer.Seconds();
  DeltaRepairStats stats = engine.stats();

  // Phase 2 — master upserts, reported separately: each one rebuilds the
  // master index and re-repairs the (genuinely dependent) fan-out of
  // tuples that probed the touched row, where the naive alternative is a
  // full recompute per upsert.
  constexpr size_t kMasterUpserts = 20;
  Timer master_timer;
  for (size_t i = 0; i < kMasterUpserts; ++i) {
    const Relation& dm = engine.master();
    size_t pos = rng.Index(dm.size());
    Tuple t(w.schema);  // private pool: dm's pool is read by the workers
    for (size_t a = 0; a < w.schema->num_attrs(); ++a) {
      t.Set(static_cast<AttrId>(a), dm.Cell(pos, static_cast<AttrId>(a)));
    }
    t.Set(*w.schema->IndexOf("addr1"),
          Value::Str("relocated " + rng.AlphaString(8)));
    engine.MasterUpdate(pos, t);
    engine.Flush();  // pay the rebuild per upsert, like a live deployment
  }
  double master_seconds = master_timer.Seconds();
  DeltaRepairStats master_stats = engine.stats();

  // Full-recompute baseline over the final state, at the same thread
  // count. A from-scratch run must also rebuild the master index.
  Relation final_input = engine.SnapshotInput();
  Relation final_master = engine.master();
  Timer full_timer;
  MasterIndex index(w.rules, final_master);
  Saturator sat(w.rules, final_master, index);
  RepairOptions batch_options;
  batch_options.num_threads = threads;
  BatchRepairResult batch =
      BatchRepair(sat, batch_options).Repair(final_input, trusted);
  double full_seconds = full_timer.Seconds();

  bool identical = ToCsv(engine.SnapshotRepaired()) == ToCsv(batch.repaired);
  double speedup = delta_seconds > 0 ? full_seconds / delta_seconds : 0;
  size_t re_repaired = stats.tuples_repaired - rows;
  double re_per_sec = delta_seconds > 0 ? re_repaired / delta_seconds : 0;
  double per_upsert = master_seconds / kMasterUpserts;
  double upsert_speedup = per_upsert > 0 ? full_seconds / per_upsert : 0;
  uint64_t master_invalidated =
      master_stats.tuples_invalidated - stats.tuples_invalidated;

  std::cout << "|Dm| = " << w.master.size() << ", rows = " << rows
            << ", mutations = " << mutations << " (" << mutate_rate * 100
            << "%), threads = " << threads << "\n\n";
  std::cout << "initial load            " << std::fixed
            << std::setprecision(3) << load_seconds << " s\n"
            << "full recompute          " << full_seconds << " s  ("
            << final_input.size() << " rows)\n\n"
            << "input-delta phase       " << delta_seconds << " s  ("
            << re_repaired << " re-repaired; "
            << stats.noop_updates << " no-op updates)\n"
            << "  re-repaired tuples/s  " << std::setprecision(0)
            << re_per_sec << "\n"
            << "  speedup vs recompute  " << std::setprecision(2) << speedup
            << "x\n\n"
            << "master-upsert phase     " << std::setprecision(3)
            << master_seconds << " s  (" << kMasterUpserts << " upserts, "
            << master_invalidated << " tuples invalidated, "
            << master_stats.master_rebuilds - stats.master_rebuilds
            << " index rebuilds)\n"
            << "  per-upsert cost       " << per_upsert << " s\n"
            << "  speedup vs recompute  " << std::setprecision(2)
            << upsert_speedup << "x per upsert\n";
  if (!identical) {
    std::cout << "\nERROR: incremental state diverged from full recompute\n";
    return 1;
  }
  std::cout << "\nincremental state byte-identical to full recompute\n";
  if (speedup < 5.0) {
    std::cout << "WARNING: input-delta speedup " << speedup
              << " below the 5x target\n";
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cout << "cannot write " << json_path << "\n";
      return 1;
    }
    json << "{\n  \"benchmark\": \"incremental_updates\",\n"
         << "  \"rows\": " << rows << ",\n"
         << "  \"mutations\": " << mutations << ",\n"
         << "  \"master_rows\": " << w.master.size() << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"load_seconds\": " << std::setprecision(4) << load_seconds
         << ",\n"
         << "  \"full_recompute_seconds\": " << full_seconds << ",\n"
         << "  \"incremental_seconds\": " << delta_seconds << ",\n"
         << "  \"re_repaired_tuples\": " << re_repaired << ",\n"
         << "  \"re_repaired_per_sec\": " << std::setprecision(1)
         << re_per_sec << ",\n"
         << "  \"speedup_vs_full\": " << std::setprecision(3) << speedup
         << ",\n"
         << "  \"master_upserts\": " << kMasterUpserts << ",\n"
         << "  \"master_upsert_seconds\": " << std::setprecision(4)
         << master_seconds << ",\n"
         << "  \"master_invalidated_tuples\": " << master_invalidated
         << ",\n"
         << "  \"master_upsert_speedup_per_upsert\": "
         << std::setprecision(3) << upsert_speedup
         << ",\n  \"output_identical\": true\n}\n";
    std::cout << "JSON summary written to " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace certfix

int main(int argc, char** argv) {
  std::string json_path;
  size_t rows = 100000;
  double mutate_rate = 0.01;
  size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--rows" && i + 1 < argc) {
      rows = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--mutate-rate" && i + 1 < argc) {
      mutate_rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::strtoul(argv[++i], nullptr, 10);
    }
  }
  return certfix::bench::Run(json_path, rows, mutate_rate, threads);
}
